//! Ground-distance functions.
//!
//! The paper measures the ground distance between two trajectory points
//! `s_i = (φ_i, λ_i)` and `s_j = (φ_j, λ_j)` as the great-circle distance
//!
//! ```text
//! dG(i, j) = 2R · arcsin √( sin²((φj−φi)/2) + cos φi · cos φj · sin²((λj−λi)/2) )
//! ```
//!
//! i.e. the haversine formula of Sinnott \[21\], with `R` the Earth radius.
//! [`haversine_m`] implements exactly this. [`equirectangular_m`] is a cheap
//! small-area approximation useful for generators, and [`Euclidean`] covers
//! planar data. The [`Metric`] trait lets callers plug any of them (or their
//! own) into the similarity measures of `fremo-similarity`.

use crate::point::{GeoPoint, GroundDistance};

/// Mean Earth radius in metres (IUGG mean radius `R1`).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Great-circle distance in metres between two geographic points using the
/// haversine formula (Sinnott \[21\]), exactly as in Section 3 of the paper.
///
/// Numerically stable for small separations (unlike the spherical law of
/// cosines) and clamped so floating-point rounding can never produce a NaN
/// from `arcsin` of a value marginally above 1.
#[inline]
#[must_use]
pub fn haversine_m(a: &GeoPoint, b: &GeoPoint) -> f64 {
    let phi1 = a.lat_rad();
    let phi2 = b.lat_rad();
    let dphi = (b.lat - a.lat).to_radians();
    let dlambda = (b.lon - a.lon).to_radians();

    let sin_dphi = (dphi * 0.5).sin();
    let sin_dlambda = (dlambda * 0.5).sin();
    let h = sin_dphi * sin_dphi + phi1.cos() * phi2.cos() * sin_dlambda * sin_dlambda;
    // `h` can exceed 1.0 by a few ULPs for antipodal points.
    2.0 * EARTH_RADIUS_M * h.min(1.0).sqrt().asin()
}

/// Equirectangular approximation of the ground distance in metres.
///
/// Projects the two points onto a plane tangent at their mean latitude; the
/// error is negligible for the city-scale separations trajectory motifs live
/// at, and it is several times cheaper than [`haversine_m`].
#[inline]
#[must_use]
pub fn equirectangular_m(a: &GeoPoint, b: &GeoPoint) -> f64 {
    let mean_lat = 0.5 * (a.lat + b.lat);
    let x = (b.lon - a.lon).to_radians() * mean_lat.to_radians().cos();
    let y = (b.lat - a.lat).to_radians();
    EARTH_RADIUS_M * (x * x + y * y).sqrt()
}

/// A pluggable point-to-point metric over a point type `P`.
///
/// Mirrors the paper's remark that the framework works with "other types of
/// ground distance". All provided metrics are symmetric and non-negative.
pub trait Metric<P> {
    /// Distance between `a` and `b`.
    fn dist(&self, a: &P, b: &P) -> f64;
}

/// Haversine great-circle metric over [`GeoPoint`] (the paper's `dG`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Haversine;

impl Metric<GeoPoint> for Haversine {
    #[inline]
    fn dist(&self, a: &GeoPoint, b: &GeoPoint) -> f64 {
        haversine_m(a, b)
    }
}

/// Equirectangular-approximation metric over [`GeoPoint`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Equirectangular;

impl Metric<GeoPoint> for Equirectangular {
    #[inline]
    fn dist(&self, a: &GeoPoint, b: &GeoPoint) -> f64 {
        equirectangular_m(a, b)
    }
}

/// Euclidean metric over any [`GroundDistance`] point whose native distance
/// is Euclidean; also usable as the "native" metric for any point type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl<P: GroundDistance> Metric<P> for Euclidean {
    #[inline]
    fn dist(&self, a: &P, b: &P) -> f64 {
        a.distance(b)
    }
}

/// Metric adapter that delegates to the point type's own
/// [`GroundDistance::distance`]. Identical behaviour to [`Euclidean`] but
/// with a name that reads correctly for geographic points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Native;

impl<P: GroundDistance> Metric<P> for Native {
    #[inline]
    fn dist(&self, a: &P, b: &P) -> f64 {
        a.distance(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::EuclideanPoint;

    fn geo(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn haversine_known_distances() {
        // London -> Paris ≈ 343.5 km.
        let london = geo(51.5074, -0.1278);
        let paris = geo(48.8566, 2.3522);
        let d = haversine_m(&london, &paris);
        assert!((d - 343_500.0).abs() < 2_000.0, "got {d}");

        // One degree of latitude ≈ 111.2 km.
        let a = geo(0.0, 0.0);
        let b = geo(1.0, 0.0);
        let d = haversine_m(&a, &b);
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn haversine_antipodal_is_half_circumference() {
        let a = geo(0.0, 0.0);
        let b = geo(0.0, 180.0);
        let d = haversine_m(&a, &b);
        let half = std::f64::consts::PI * EARTH_RADIUS_M;
        assert!((d - half).abs() < 1.0, "got {d}, want {half}");
        assert!(d.is_finite());
    }

    #[test]
    fn haversine_small_distances_stable() {
        // ~1.1 m apart; law-of-cosines would lose precision here.
        let a = geo(39.900000, 116.400000);
        let b = geo(39.900010, 116.400000);
        let d = haversine_m(&a, &b);
        assert!((d - 1.112).abs() < 0.01, "got {d}");
        assert!(d > 0.0);
    }

    #[test]
    fn equirectangular_close_to_haversine_at_city_scale() {
        let a = geo(39.9042, 116.4074);
        let b = geo(39.9500, 116.4500);
        let h = haversine_m(&a, &b);
        let e = equirectangular_m(&a, &b);
        let rel = (h - e).abs() / h;
        assert!(rel < 1e-3, "relative error {rel}");
    }

    #[test]
    fn metric_trait_objects_agree_with_free_functions() {
        let a = geo(10.0, 20.0);
        let b = geo(11.0, 21.0);
        assert_eq!(Haversine.dist(&a, &b), haversine_m(&a, &b));
        assert_eq!(Equirectangular.dist(&a, &b), equirectangular_m(&a, &b));
        let p = EuclideanPoint::new(0.0, 0.0);
        let q = EuclideanPoint::new(1.0, 0.0);
        assert_eq!(Euclidean.dist(&p, &q), 1.0);
        assert_eq!(Native.dist(&p, &q), 1.0);
        // Native over GeoPoint equals haversine.
        assert_eq!(Native.dist(&a, &b), haversine_m(&a, &b));
    }

    #[test]
    fn symmetry_over_grid() {
        let pts: Vec<GeoPoint> = (0..10)
            .map(|i| geo(-80.0 + 17.0 * i as f64, -170.0 + 34.0 * i as f64))
            .collect();
        for p in &pts {
            for q in &pts {
                let pq = haversine_m(p, q);
                let qp = haversine_m(q, p);
                assert!((pq - qp).abs() < 1e-9);
                assert!(pq >= 0.0);
                assert!(pq.is_finite());
            }
        }
    }
}
