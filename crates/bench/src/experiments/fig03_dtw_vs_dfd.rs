//! Figure 3: DTW vs DFD under non-uniform sampling.
//!
//! The paper's construction: `Sa` and `Sb` uniformly sampled, `Sc`
//! non-uniformly sampled along (nearly) `Sa`'s path. Intuitively `Sc` is
//! more similar to `Sa` than `Sb` is — DFD agrees, DTW inverts the ranking
//! because its sum-of-matches formulation double-counts the oversampled
//! stretch.

use fremo_similarity::{dfd, dtw};
use fremo_trajectory::EuclideanPoint;

use crate::experiments::Titled;
use crate::scale::Scale;
use crate::table::Table;

/// Builds the (Sa, Sb, Sc) triplet. Units are metres on a planar pitch.
///
/// `Sc` follows (almost) `Sa`'s path but was logged by a chatty receiver:
/// it has 4× the samples, 80% of them crammed into the first 20% of the
/// path — the dense dot cluster of the paper's Figure 3.
#[must_use]
pub fn triplet(
    n: usize,
) -> (
    Vec<EuclideanPoint>,
    Vec<EuclideanPoint>,
    Vec<EuclideanPoint>,
) {
    let path = |s: f64, off: f64| EuclideanPoint::new(s * 100.0, off + 8.0 * (s * 4.0).sin());
    let sa: Vec<_> = (0..n)
        .map(|k| path(k as f64 / (n - 1) as f64, 0.0))
        .collect();
    // Sb: uniformly sampled, genuinely different path (offset 4 m).
    let sb: Vec<_> = (0..n)
        .map(|k| path(k as f64 / (n - 1) as f64, 4.0))
        .collect();
    // Sc: nearly Sa's path (offset 1.5 m), oversampled non-uniformly.
    let nc = 4 * n;
    let head = (nc as f64 * 0.8) as usize;
    let mut sc = Vec::with_capacity(nc);
    for k in 0..head {
        sc.push(path(0.2 * k as f64 / head as f64, 1.5));
    }
    for k in 0..(nc - head) {
        sc.push(path(
            0.2 + 0.8 * k as f64 / (nc - head - 1).max(1) as f64,
            1.5,
        ));
    }
    (sa, sb, sc)
}

/// Regenerates Figure 3's comparison.
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let n = match scale {
        Scale::Smoke => 60,
        _ => 200,
    };
    let (sa, sb, sc) = triplet(n);

    let mut table = Table::new(vec!["pair", "DTW", "DFD", "truth"]);
    table.row(vec![
        "(Sa, Sb) — different paths".to_string(),
        format!("{:.1}", dtw(&sa, &sb)),
        format!("{:.2}", dfd(&sa, &sb)),
        "less similar".to_string(),
    ]);
    table.row(vec![
        "(Sa, Sc) — same path, non-uniform".to_string(),
        format!("{:.1}", dtw(&sa, &sc)),
        format!("{:.2}", dfd(&sa, &sc)),
        "more similar".to_string(),
    ]);

    let dtw_inverted = dtw(&sa, &sc) > dtw(&sa, &sb);
    let dfd_correct = dfd(&sa, &sc) < dfd(&sa, &sb);
    let mut verdict = Table::new(vec!["measure", "ranks Sc closer than Sb?"]);
    verdict.row(vec!["DTW".to_string(), (!dtw_inverted).to_string()]);
    verdict.row(vec!["DFD".to_string(), dfd_correct.to_string()]);

    vec![
        (
            "Figure 3: DTW vs DFD; Sc is non-uniformly sampled".to_string(),
            table,
        ),
        ("Verdict".to_string(), verdict),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_inversion() {
        let (sa, sb, sc) = triplet(120);
        assert!(dfd(&sa, &sc) < dfd(&sa, &sb), "DFD must rank Sc closer");
        assert!(dtw(&sa, &sc) > dtw(&sa, &sb), "DTW must be fooled");
    }

    #[test]
    fn runs_at_smoke_scale() {
        let out = run(Scale::Smoke);
        assert_eq!(out.len(), 2);
    }
}
