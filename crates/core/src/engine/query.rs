//! Typed queries, the fluent [`QueryBuilder`], algorithm selection, and
//! query outcomes.

use std::time::{Duration, Instant};

use crate::cluster::SubtrajectoryCluster;
use crate::config::{BoundSelection, MotifConfig};
use crate::join::JoinResult;
use crate::result::Motif;
use crate::search::SearchBudget;
use crate::stats::SearchStats;

use super::cache::CacheReport;
use super::TrajId;

/// Where a motif query searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MotifScope {
    /// Problem 1: the best non-overlapping pair within one trajectory.
    Within(TrajId),
    /// The two-trajectory variant: the best cross pair between two
    /// trajectories.
    Between(TrajId, TrajId),
}

/// The workload of a [`Query`].
///
/// `#[non_exhaustive]`: build queries through the [`Query`] constructors
/// so new workloads can be added without breaking matches.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueryKind {
    /// Motif discovery (Problem 1 or its two-trajectory variant).
    Motif {
        /// Search scope.
        scope: MotifScope,
    },
    /// The `k` best index-disjoint motifs within one trajectory.
    TopK {
        /// Target trajectory.
        id: TrajId,
        /// How many disjoint motifs to report.
        k: usize,
    },
    /// DFD similarity join over whole trajectories.
    Join {
        /// Left-hand trajectories.
        probe: Vec<TrajId>,
        /// Right-hand trajectories; `None` runs a self-join over `probe`
        /// (unordered pairs, diagonal excluded).
        base: Option<Vec<TrajId>>,
        /// DFD threshold `ε`.
        epsilon: f64,
    },
    /// Leader clustering of sliding subtrajectory windows.
    Cluster {
        /// Target trajectory.
        id: TrajId,
        /// Window length in points (≥ 2).
        window: usize,
        /// Stride between window starts (≥ 1).
        stride: usize,
        /// DFD threshold for joining a cluster.
        epsilon: f64,
    },
    /// Whole-trajectory similarity profile under every Table 1 measure
    /// (ED, DTW, LCSS, EDR, DFD, Hausdorff).
    Measures {
        /// First trajectory.
        a: TrajId,
        /// Second trajectory.
        b: TrajId,
        /// Matching threshold for LCSS/EDR.
        epsilon: f64,
    },
}

/// Which algorithm a motif-style query runs.
///
/// [`AlgorithmChoice::Auto`] picks from the trajectory length `n` and the
/// minimum motif length ξ using the crossovers of the paper's Section 6
/// evaluation — see [`AlgorithmChoice::resolve`] for the exact rule.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum AlgorithmChoice {
    /// Pick automatically from `n` and ξ (see [`AlgorithmChoice::resolve`]).
    Auto,
    /// Algorithm 1, the `O(n⁴)` baseline.
    BruteDp,
    /// Algorithm 2, bounding-based.
    Btm,
    /// Algorithm 3, grouping-based.
    Gtm,
    /// Section 5.5, the space-efficient grouping variant.
    GtmStar,
    /// `(1+ε)`-approximate search on the GTM machinery.
    Approx {
        /// Approximation slack `ε ≥ 0`.
        epsilon: f64,
    },
}

/// Below this length [`AlgorithmChoice::Auto`] picks BruteDP: the search
/// space is tiny and bound-table precomputation dominates.
pub const AUTO_BRUTE_MAX_N: usize = 64;
/// Up to this length — or whenever `8ξ ≥ n` — Auto picks BTM: grouping
/// needs a large candidate grid relative to τ to amortize (Figure 17/20).
pub const AUTO_BTM_MAX_N: usize = 512;
/// Up to this length Auto picks GTM (Figure 18's sweet spot); beyond it
/// the dense `O(n²)` distance matrix passes ~128 MiB and Auto trades time
/// for GTM*'s `O(max{(n/τ)², n})` space (Figure 19).
pub const AUTO_GTM_MAX_N: usize = 4096;

/// The concrete method [`AlgorithmChoice`] resolves to for a given input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResolvedAlgorithm {
    /// Algorithm 1.
    BruteDp,
    /// Algorithm 2.
    Btm,
    /// Algorithm 3.
    Gtm,
    /// Section 5.5.
    GtmStar,
    /// GTM with `(1+ε)` pruning.
    Approx(f64),
}

impl ResolvedAlgorithm {
    /// Display name, matching
    /// [`crate::MotifDiscovery::name`](crate::MotifDiscovery) for the
    /// direct implementations.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ResolvedAlgorithm::BruteDp => "BruteDP",
            ResolvedAlgorithm::Btm => "BTM",
            ResolvedAlgorithm::Gtm => "GTM",
            ResolvedAlgorithm::GtmStar => "GTM*",
            ResolvedAlgorithm::Approx(_) => "GTM(1+eps)",
        }
    }
}

impl AlgorithmChoice {
    /// The names accepted by the [`std::str::FromStr`] implementation.
    pub const VALID_NAMES: &'static [&'static str] = &[
        "auto",
        "brute",
        "brutedp",
        "btm",
        "gtm",
        "gtm-star",
        "gtm*",
        "approx:<eps>",
    ];

    /// Resolves the choice for a search over (maximum) trajectory length
    /// `n` and minimum motif length `xi`.
    ///
    /// The `Auto` rule encodes the paper's Section 6 crossovers:
    ///
    /// 1. `n > `[`AUTO_GTM_MAX_N`] → GTM* — above ~4096 points the dense
    ///    distance matrix exceeds ~128 MiB, so Auto trades time for space
    ///    (Figure 19). This memory guard takes precedence over every
    ///    speed rule below.
    /// 2. `n ≤ `[`AUTO_BRUTE_MAX_N`] → BruteDP — at toy sizes the bound
    ///    precomputation costs more than it saves.
    /// 3. `n ≤ `[`AUTO_BTM_MAX_N`] or `8ξ ≥ n` → BTM — grouping only pays
    ///    when the candidate grid is large relative to τ.
    /// 4. otherwise → GTM — the paper's fastest method in its measured
    ///    range (Figure 18).
    #[must_use]
    pub fn resolve(self, n: usize, xi: usize) -> ResolvedAlgorithm {
        match self {
            AlgorithmChoice::Auto => {
                if n > AUTO_GTM_MAX_N {
                    ResolvedAlgorithm::GtmStar
                } else if n <= AUTO_BRUTE_MAX_N {
                    ResolvedAlgorithm::BruteDp
                } else if n <= AUTO_BTM_MAX_N || xi.saturating_mul(8) >= n {
                    ResolvedAlgorithm::Btm
                } else {
                    ResolvedAlgorithm::Gtm
                }
            }
            AlgorithmChoice::BruteDp => ResolvedAlgorithm::BruteDp,
            AlgorithmChoice::Btm => ResolvedAlgorithm::Btm,
            AlgorithmChoice::Gtm => ResolvedAlgorithm::Gtm,
            AlgorithmChoice::GtmStar => ResolvedAlgorithm::GtmStar,
            AlgorithmChoice::Approx { epsilon } => ResolvedAlgorithm::Approx(epsilon),
        }
    }
}

impl std::fmt::Display for AlgorithmChoice {
    /// The CLI-facing spelling accepted by [`std::str::FromStr`]
    /// (`auto`, `brute`, `btm`, `gtm`, `gtm-star`, `approx:<eps>`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgorithmChoice::Auto => f.write_str("auto"),
            AlgorithmChoice::BruteDp => f.write_str("brute"),
            AlgorithmChoice::Btm => f.write_str("btm"),
            AlgorithmChoice::Gtm => f.write_str("gtm"),
            AlgorithmChoice::GtmStar => f.write_str("gtm-star"),
            AlgorithmChoice::Approx { epsilon } => write!(f, "approx:{epsilon}"),
        }
    }
}

/// Error for an unrecognized algorithm name; its message lists every
/// valid name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgorithmError {
    got: String,
}

impl std::fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown algorithm {:?} (valid: {})",
            self.got,
            AlgorithmChoice::VALID_NAMES.join(", ")
        )
    }
}

impl std::error::Error for ParseAlgorithmError {}

impl std::str::FromStr for AlgorithmChoice {
    type Err = ParseAlgorithmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(AlgorithmChoice::Auto),
            "brute" | "brutedp" => Ok(AlgorithmChoice::BruteDp),
            "btm" => Ok(AlgorithmChoice::Btm),
            "gtm" => Ok(AlgorithmChoice::Gtm),
            "gtm-star" | "gtm*" => Ok(AlgorithmChoice::GtmStar),
            lower => {
                if let Some(eps) = lower.strip_prefix("approx:") {
                    if let Ok(epsilon) = eps.parse::<f64>() {
                        if epsilon >= 0.0 && epsilon.is_finite() {
                            return Ok(AlgorithmChoice::Approx { epsilon });
                        }
                    }
                }
                Err(ParseAlgorithmError { got: s.to_string() })
            }
        }
    }
}

/// [`ExecutionMode::Auto`] switches a motif/top-k query to the parallel
/// layer once the (longest) trajectory passes this length — the same
/// Section 6 crossover past which BTM hands over to the grouping
/// methods, i.e. the point where the candidate grid (and the `O(n²)`
/// matrix precompute) is large enough to amortize worker fan-out.
pub const PARALLEL_AUTO_MIN_N: usize = AUTO_BTM_MAX_N;

/// How a query's candidate scan executes.
///
/// ## Exactness of the parallel mode
///
/// Parallel execution changes *scheduling only*, never results. Workers
/// claim sorted candidate subsets through an atomic cursor and prune
/// against a **snapshot** of the shared best-so-far. The snapshot may be
/// stale, but `bsf` only ever decreases — so a stale value is an upper
/// bound on the live one, and a stale snapshot can only prune *less*
/// than the final value would, never a candidate that could still win.
/// Wrongly pruning is therefore impossible; the worst case is wasted
/// work, which [`crate::SearchStats::subsets_expanded_wasted`] reports.
/// On top of that safety argument the scan merges candidates by
/// `(DFD value, sorted-entry index)`, which resolves exact ties the same
/// way the serial scan's first-winner rule does — making parallel
/// results **bit-for-bit identical** to serial ones for the exact
/// algorithms (BTM, GTM, GTM*, top-k, join, cluster). Only the
/// `(1+ε)`-approximate search may return a different (still
/// within-guarantee) motif under parallelism.
///
/// `Auto` applies the crossover rule to motif and top-k queries; join,
/// cluster, and measures queries run serially under `Auto` and
/// parallelize only on an explicit [`ExecutionMode::Parallel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// Parallel above the Section-6 crossover sizes
    /// ([`PARALLEL_AUTO_MIN_N`]), serial below — with thread count from
    /// the global budget (`FREMO_THREADS` or the machine's available
    /// parallelism; see [`crate::pool::global_threads`]).
    #[default]
    Auto,
    /// Always scan on the caller's thread.
    Serial,
    /// Scan on the parallel execution layer.
    Parallel {
        /// Worker threads; `0` resolves through the global budget.
        threads: usize,
    },
}

impl ExecutionMode {
    /// Resolves the worker count for a motif-style query over (longest)
    /// trajectory length `n`: `0` = run the legacy serial scan on the
    /// caller's thread, `t >= 1` = run the parallel layer with `t`
    /// workers (one worker runs inline, but exercises the same code
    /// path).
    #[must_use]
    pub fn resolve(self, n: usize) -> usize {
        match self {
            ExecutionMode::Serial => 0,
            ExecutionMode::Parallel { threads } => crate::pool::resolve_threads(threads),
            ExecutionMode::Auto => {
                if n > PARALLEL_AUTO_MIN_N {
                    crate::pool::resolve_threads(0)
                } else {
                    0
                }
            }
        }
    }

    /// Resolution for workloads without an `Auto` crossover (join,
    /// cluster): explicit `Parallel` resolves its thread count, both
    /// `Auto` and `Serial` run serially.
    #[must_use]
    pub fn resolve_explicit(self) -> usize {
        match self {
            ExecutionMode::Parallel { threads } => crate::pool::resolve_threads(threads),
            ExecutionMode::Auto | ExecutionMode::Serial => 0,
        }
    }
}

/// An optional resource budget for a motif-search query (motif or
/// top-k) — the engine stops expanding work when it is spent and flags
/// the outcome as truncated. Join, cluster, and measures queries cannot
/// honor a budget; setting one on them is rejected with
/// [`EngineError::InvalidParameter`] rather than silently ignored.
///
/// `#[non_exhaustive]`: start from [`QueryBudget::default`] (unlimited)
/// and set caps with the `with_*` setters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[non_exhaustive]
pub struct QueryBudget {
    /// Wall-clock cap in seconds.
    pub max_seconds: Option<f64>,
    /// Cap on candidate subsets expanded (exact-DP invocations).
    pub max_subsets: Option<u64>,
}

impl QueryBudget {
    /// Caps wall-clock time.
    ///
    /// # Panics
    ///
    /// Panics when `seconds` is non-finite or negative.
    #[must_use]
    pub fn with_max_seconds(mut self, seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "time budget must be finite and ≥ 0"
        );
        self.max_seconds = Some(seconds);
        self
    }

    /// Caps the number of candidate-subset expansions.
    #[must_use]
    pub const fn with_max_subsets(mut self, subsets: u64) -> Self {
        self.max_subsets = Some(subsets);
        self
    }

    /// Whether no cap is set.
    #[must_use]
    pub const fn is_unlimited(&self) -> bool {
        self.max_seconds.is_none() && self.max_subsets.is_none()
    }

    pub(crate) fn to_search_budget(self, started: Instant) -> Option<SearchBudget> {
        if self.is_unlimited() {
            return None;
        }
        // A cap too large to represent as an Instant is no cap at all;
        // fall back to "no deadline" instead of panicking.
        let deadline = self
            .max_seconds
            .and_then(|s| Duration::try_from_secs_f64(s).ok())
            .and_then(|d| started.checked_add(d));
        Some(SearchBudget {
            deadline,
            max_subsets: self.max_subsets,
        })
    }
}

/// Storage precision of the per-query ground-distance matrix.
///
/// [`MatrixPrecision::F32`] halves matrix bytes by rounding each
/// distance once to single precision, which perturbs results by at most
/// one `f32` rounding step per cell — admissible **only** for the
/// approximate algorithm ([`AlgorithmChoice::Approx`]), whose answer
/// already carries an additive error bound. The engine rejects `F32` on
/// every exact workload so that bit-exactness guarantees (and the
/// shared engine cache) are never silently weakened; see
/// `docs/KERNELS.md`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum MatrixPrecision {
    /// Full double precision — bit-exact, cacheable, the default.
    #[default]
    F64,
    /// Single-precision matrix cells for `Approx{eps}` queries only.
    F32,
}

/// One typed query against an [`super::Engine`] corpus.
///
/// Build with the constructors ([`Query::motif`], [`Query::top_k`],
/// [`Query::join`], [`Query::cluster`], …) and refine with the fluent
/// [`QueryBuilder`] they return. `#[non_exhaustive]`: fields may grow;
/// use the `with_*` setters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Query {
    /// The workload.
    pub kind: QueryKind,
    /// Minimum motif length ξ (motif/top-k queries; ignored by the rest).
    pub min_length: usize,
    /// Bound families for the pruning algorithms.
    pub bounds: BoundSelection,
    /// Initial group size τ for GTM/GTM*.
    pub group_size: usize,
    /// Algorithm selection for motif-style queries.
    pub algorithm: AlgorithmChoice,
    /// Optional resource budget.
    pub budget: QueryBudget,
    /// How the candidate scan executes (serial, parallel, or auto).
    pub execution: ExecutionMode,
    /// Distance-matrix storage precision (approximate queries only).
    pub precision: MatrixPrecision,
}

impl Query {
    fn with_kind(kind: QueryKind) -> QueryBuilder {
        QueryBuilder {
            query: Query {
                kind,
                min_length: 1,
                bounds: BoundSelection::all_relaxed(),
                group_size: 32,
                algorithm: AlgorithmChoice::Auto,
                budget: QueryBudget::default(),
                execution: ExecutionMode::Auto,
                precision: MatrixPrecision::F64,
            },
        }
    }

    /// Motif discovery within one trajectory (Problem 1).
    #[must_use]
    pub fn motif(id: TrajId) -> QueryBuilder {
        Query::with_kind(QueryKind::Motif {
            scope: MotifScope::Within(id),
        })
    }

    /// Motif discovery between two trajectories.
    #[must_use]
    pub fn motif_between(a: TrajId, b: TrajId) -> QueryBuilder {
        Query::with_kind(QueryKind::Motif {
            scope: MotifScope::Between(a, b),
        })
    }

    /// The `k` best index-disjoint motifs within one trajectory.
    ///
    /// Top-k always runs the dense BTM machinery (masked rounds over a
    /// precomputed distance matrix), so it holds `O(n²)` memory even on
    /// inputs where [`AlgorithmChoice::Auto`] would route a plain motif
    /// query to the space-efficient GTM*; budget very large trajectories
    /// accordingly.
    #[must_use]
    pub fn top_k(id: TrajId, k: usize) -> QueryBuilder {
        Query::with_kind(QueryKind::TopK { id, k })
    }

    /// DFD self-join: all unordered pairs within `ids` with `DFD ≤ eps`.
    #[must_use]
    pub fn join(ids: Vec<TrajId>, eps: f64) -> QueryBuilder {
        Query::with_kind(QueryKind::Join {
            probe: ids,
            base: None,
            epsilon: eps,
        })
    }

    /// DFD cross-join: all pairs `(a, b)` with `DFD ≤ eps`.
    #[must_use]
    pub fn join_between(a: Vec<TrajId>, b: Vec<TrajId>, eps: f64) -> QueryBuilder {
        Query::with_kind(QueryKind::Join {
            probe: a,
            base: Some(b),
            epsilon: eps,
        })
    }

    /// Leader clustering of sliding windows over one trajectory.
    #[must_use]
    pub fn cluster(id: TrajId, window: usize, stride: usize, eps: f64) -> QueryBuilder {
        Query::with_kind(QueryKind::Cluster {
            id,
            window,
            stride,
            epsilon: eps,
        })
    }

    /// Whole-trajectory similarity profile (ED, DTW, LCSS, EDR, DFD,
    /// Hausdorff) between two trajectories; `eps` is the LCSS/EDR
    /// matching threshold.
    #[must_use]
    pub fn measures(a: TrajId, b: TrajId, eps: f64) -> QueryBuilder {
        Query::with_kind(QueryKind::Measures { a, b, epsilon: eps })
    }

    /// Replaces the minimum motif length ξ.
    #[must_use]
    pub fn with_xi(mut self, xi: usize) -> Self {
        self.min_length = xi;
        self
    }

    /// Replaces the bound selection.
    #[must_use]
    pub fn with_bounds(mut self, bounds: BoundSelection) -> Self {
        self.bounds = bounds;
        self
    }

    /// Replaces the initial group size τ.
    #[must_use]
    pub fn with_group_size(mut self, tau: usize) -> Self {
        self.group_size = tau;
        self
    }

    /// Replaces the algorithm choice.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: AlgorithmChoice) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Replaces the budget.
    #[must_use]
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the execution mode.
    #[must_use]
    pub fn with_execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }

    /// Replaces the distance-matrix precision (see [`MatrixPrecision`]).
    #[must_use]
    pub fn with_precision(mut self, precision: MatrixPrecision) -> Self {
        self.precision = precision;
        self
    }

    /// The [`MotifConfig`] this query implies.
    ///
    /// # Panics
    ///
    /// Panics when ξ or τ is zero; [`super::Engine::execute`] validates
    /// both beforehand and returns [`EngineError::InvalidParameter`]
    /// instead.
    #[must_use]
    pub fn motif_config(&self) -> MotifConfig {
        MotifConfig::new(self.min_length)
            .with_bounds(self.bounds)
            .with_group_size(self.group_size)
    }
}

/// Fluent builder returned by the [`Query`] constructors.
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    query: Query,
}

impl QueryBuilder {
    /// Sets the minimum motif length ξ.
    #[must_use]
    pub fn xi(mut self, xi: usize) -> Self {
        self.query = self.query.with_xi(xi);
        self
    }

    /// Sets the bound selection.
    #[must_use]
    pub fn bounds(mut self, bounds: BoundSelection) -> Self {
        self.query = self.query.with_bounds(bounds);
        self
    }

    /// Sets the initial group size τ.
    #[must_use]
    pub fn group_size(mut self, tau: usize) -> Self {
        self.query = self.query.with_group_size(tau);
        self
    }

    /// Sets the algorithm choice.
    #[must_use]
    pub fn algorithm(mut self, algorithm: AlgorithmChoice) -> Self {
        self.query = self.query.with_algorithm(algorithm);
        self
    }

    /// Sets the full budget.
    #[must_use]
    pub fn budget(mut self, budget: QueryBudget) -> Self {
        self.query = self.query.with_budget(budget);
        self
    }

    /// Caps wall-clock time.
    #[must_use]
    pub fn time_budget(mut self, limit: Duration) -> Self {
        self.query.budget = self.query.budget.with_max_seconds(limit.as_secs_f64());
        self
    }

    /// Caps candidate-subset expansions.
    #[must_use]
    pub fn candidate_budget(mut self, subsets: u64) -> Self {
        self.query.budget = self.query.budget.with_max_subsets(subsets);
        self
    }

    /// Sets the execution mode.
    #[must_use]
    pub fn execution(mut self, execution: ExecutionMode) -> Self {
        self.query = self.query.with_execution(execution);
        self
    }

    /// Shorthand for [`ExecutionMode::Parallel`] with `threads` workers
    /// (`0` = the global budget, i.e. `FREMO_THREADS` or all cores).
    #[must_use]
    pub fn threads(self, threads: usize) -> Self {
        self.execution(ExecutionMode::Parallel { threads })
    }

    /// Sets the distance-matrix precision. [`MatrixPrecision::F32`] is
    /// accepted only together with [`AlgorithmChoice::Approx`]; the
    /// engine rejects it on exact workloads.
    #[must_use]
    pub fn matrix_precision(mut self, precision: MatrixPrecision) -> Self {
        self.query = self.query.with_precision(precision);
        self
    }

    /// Finishes the query.
    #[must_use]
    pub fn build(self) -> Query {
        self.query
    }
}

/// Whole-trajectory distances under every measure of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct MeasureProfile {
    /// Lock-step Euclidean distance.
    pub euclidean: f64,
    /// Dynamic time warping.
    pub dtw: f64,
    /// LCSS distance (`1 − |LCSS|/min(n,m)`).
    pub lcss: f64,
    /// Edit distance on real sequences (edit count).
    pub edr: usize,
    /// Discrete Fréchet distance.
    pub dfd: f64,
    /// Symmetric Hausdorff distance.
    pub hausdorff: f64,
    /// The LCSS/EDR matching threshold the profile was computed with.
    pub epsilon: f64,
}

/// The per-workload payload of a [`QueryOutcome`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum QueryResults {
    /// Motif query result (`None` when the input is too short for ξ).
    Motif(Option<Motif>),
    /// Top-k query result, best first.
    TopK(Vec<Motif>),
    /// Similarity-join result.
    Join(JoinResult),
    /// Clustering result, largest cluster first.
    Cluster(Vec<SubtrajectoryCluster>),
    /// Similarity profile.
    Measures(MeasureProfile),
}

/// What every engine query returns: results, statistics, and provenance.
///
/// `#[non_exhaustive]`: fields may grow (it is only ever constructed by
/// the engine).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct QueryOutcome {
    /// The workload-specific payload.
    pub results: QueryResults,
    /// Name of the algorithm that ran (after `Auto` resolution).
    pub algorithm: &'static str,
    /// Search statistics (motif-style queries; zeroed for join/cluster/
    /// measures, whose counters live in their payloads).
    pub stats: SearchStats,
    /// End-to-end wall time of [`super::Engine::execute`] in seconds,
    /// including cache lookups — compare with `stats.total_seconds` to see
    /// the facade overhead.
    pub wall_seconds: f64,
    /// What this query hit or built in the engine's cache.
    pub cache: CacheReport,
    /// Whether a [`QueryBudget`] cut the search short (the result is then
    /// best-effort, not guaranteed optimal).
    pub truncated: bool,
}

impl QueryOutcome {
    /// The best motif of a motif or top-k query (`None` for the other
    /// workloads, or when no motif exists).
    #[must_use]
    pub fn motif(&self) -> Option<Motif> {
        match &self.results {
            QueryResults::Motif(m) => *m,
            QueryResults::TopK(ms) => ms.first().copied(),
            _ => None,
        }
    }

    /// The motif list of a top-k query (singleton for a motif query).
    #[must_use]
    pub fn motifs(&self) -> Vec<Motif> {
        match &self.results {
            QueryResults::Motif(m) => m.iter().copied().collect(),
            QueryResults::TopK(ms) => ms.clone(),
            _ => Vec::new(),
        }
    }

    /// The join result, when this was a join query.
    #[must_use]
    pub fn join(&self) -> Option<&JoinResult> {
        match &self.results {
            QueryResults::Join(j) => Some(j),
            _ => None,
        }
    }

    /// The clusters, when this was a cluster query.
    #[must_use]
    pub fn clusters(&self) -> Option<&[SubtrajectoryCluster]> {
        match &self.results {
            QueryResults::Cluster(c) => Some(c),
            _ => None,
        }
    }

    /// The similarity profile, when this was a measures query.
    #[must_use]
    pub fn measures(&self) -> Option<&MeasureProfile> {
        match &self.results {
            QueryResults::Measures(m) => Some(m),
            _ => None,
        }
    }
}

/// Why the engine rejected a query.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A [`TrajId`] does not belong to this engine's corpus.
    UnknownTrajectory(TrajId),
    /// A parameter is out of range (message names it).
    InvalidParameter(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownTrajectory(id) => {
                write!(f, "trajectory {id:?} is not registered with this engine")
            }
            EngineError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_rule_matches_documentation() {
        let a = AlgorithmChoice::Auto;
        assert_eq!(a.resolve(50, 5), ResolvedAlgorithm::BruteDp);
        assert_eq!(a.resolve(64, 5), ResolvedAlgorithm::BruteDp);
        assert_eq!(a.resolve(65, 5), ResolvedAlgorithm::Btm);
        assert_eq!(a.resolve(512, 20), ResolvedAlgorithm::Btm);
        assert_eq!(a.resolve(2000, 20), ResolvedAlgorithm::Gtm);
        // Large ξ relative to n keeps BTM even past the BTM cutoff.
        assert_eq!(a.resolve(2000, 300), ResolvedAlgorithm::Btm);
        assert_eq!(a.resolve(4096, 20), ResolvedAlgorithm::Gtm);
        assert_eq!(a.resolve(5000, 20), ResolvedAlgorithm::GtmStar);
        // The memory guard outranks the large-ξ BTM rule: at 20k points
        // the dense matrix would be ~1.6 GB regardless of ξ.
        assert_eq!(a.resolve(20_000, 3_000), ResolvedAlgorithm::GtmStar);
    }

    #[test]
    fn explicit_choices_resolve_to_themselves() {
        assert_eq!(
            AlgorithmChoice::BruteDp.resolve(10_000, 1),
            ResolvedAlgorithm::BruteDp
        );
        assert_eq!(AlgorithmChoice::Btm.resolve(5, 1), ResolvedAlgorithm::Btm);
        assert_eq!(
            AlgorithmChoice::Approx { epsilon: 0.5 }.resolve(100, 5),
            ResolvedAlgorithm::Approx(0.5)
        );
    }

    #[test]
    fn algorithm_names_parse_and_errors_list_valid() {
        assert_eq!("auto".parse::<AlgorithmChoice>(), Ok(AlgorithmChoice::Auto));
        assert_eq!("BTM".parse::<AlgorithmChoice>(), Ok(AlgorithmChoice::Btm));
        assert_eq!(
            "gtm-star".parse::<AlgorithmChoice>(),
            Ok(AlgorithmChoice::GtmStar)
        );
        assert_eq!(
            "gtm*".parse::<AlgorithmChoice>(),
            Ok(AlgorithmChoice::GtmStar)
        );
        assert_eq!(
            "brutedp".parse::<AlgorithmChoice>(),
            Ok(AlgorithmChoice::BruteDp)
        );
        assert_eq!(
            "approx:0.5".parse::<AlgorithmChoice>(),
            Ok(AlgorithmChoice::Approx { epsilon: 0.5 })
        );
        let err = "frobnicate".parse::<AlgorithmChoice>().unwrap_err();
        let msg = err.to_string();
        for name in AlgorithmChoice::VALID_NAMES {
            assert!(msg.contains(name), "{msg:?} missing {name}");
        }
        assert!("approx:-1".parse::<AlgorithmChoice>().is_err());
        assert!("approx:nan".parse::<AlgorithmChoice>().is_err());
    }

    #[test]
    fn builder_carries_every_knob() {
        let id = TrajId::from_index(0);
        let q = Query::motif(id)
            .xi(12)
            .bounds(BoundSelection::cell_only())
            .group_size(8)
            .algorithm(AlgorithmChoice::Btm)
            .candidate_budget(100)
            .time_budget(Duration::from_millis(250))
            .build();
        assert_eq!(q.min_length, 12);
        assert!(q.bounds.cell && !q.bounds.cross);
        assert_eq!(q.group_size, 8);
        assert_eq!(q.algorithm, AlgorithmChoice::Btm);
        assert_eq!(q.budget.max_subsets, Some(100));
        assert!(q.budget.max_seconds.is_some());
        assert!(!q.budget.is_unlimited());
        let cfg = q.motif_config();
        assert_eq!(cfg.min_length, 12);
        assert_eq!(cfg.group_size, 8);
    }

    #[test]
    fn execution_mode_resolution() {
        assert_eq!(ExecutionMode::default(), ExecutionMode::Auto);
        assert_eq!(ExecutionMode::Serial.resolve(100_000), 0);
        assert_eq!(ExecutionMode::Parallel { threads: 3 }.resolve(10), 3);
        assert!(ExecutionMode::Parallel { threads: 0 }.resolve(10) >= 1);
        assert_eq!(ExecutionMode::Auto.resolve(PARALLEL_AUTO_MIN_N), 0);
        assert!(ExecutionMode::Auto.resolve(PARALLEL_AUTO_MIN_N + 1) >= 1);
        assert_eq!(ExecutionMode::Serial.resolve_explicit(), 0);
        assert_eq!(ExecutionMode::Auto.resolve_explicit(), 0);
        assert_eq!(ExecutionMode::Parallel { threads: 2 }.resolve_explicit(), 2);
        let id = TrajId::from_index(0);
        let q = Query::motif(id).xi(2).threads(4).build();
        assert_eq!(q.execution, ExecutionMode::Parallel { threads: 4 });
        let q = Query::motif(id)
            .xi(2)
            .execution(ExecutionMode::Serial)
            .build();
        assert_eq!(q.execution, ExecutionMode::Serial);
    }

    #[test]
    fn oversized_time_budget_degrades_to_no_deadline() {
        // Larger than any representable Instant offset: must not panic,
        // and acts as "no deadline".
        let b = QueryBudget::default().with_max_seconds(1e20);
        let sb = b.to_search_budget(Instant::now()).unwrap();
        assert!(sb.deadline.is_none());
        assert!(!sb.exceeded(u64::MAX - 1));
    }

    #[test]
    fn unlimited_budget_maps_to_none() {
        assert!(QueryBudget::default()
            .to_search_budget(Instant::now())
            .is_none());
        let b = QueryBudget::default().with_max_subsets(5);
        let sb = b.to_search_budget(Instant::now()).unwrap();
        assert_eq!(sb.max_subsets, Some(5));
        assert!(sb.deadline.is_none());
    }
}
