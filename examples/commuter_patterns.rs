//! Commuter-pattern mining — the paper's Figure 1 scenario.
//!
//! A pedestrian's multi-day GPS log contains the same commute walked on
//! different days. The motif (most similar pair of non-overlapping
//! subtrajectories) recovers the repeated route together with *when* it
//! was walked, exactly like the paper's "07:33–07:48, April 10" vs
//! "07:33–07:50, April 12" example.
//!
//! ```bash
//! cargo run --release --example commuter_patterns
//! ```

use fremo::prelude::*;
use fremo::trajectory::gen;
use fremo::trajectory::Trajectory;

const DAY_LEN: usize = 700;

/// "Day 2" re-walks day 1's route with fresh GPS noise and slightly
/// different pacing — the same commute on another morning.
fn rewalk(day: &Trajectory<GeoPoint>, seed: u64) -> Trajectory<GeoPoint> {
    let mut s = seed | 1;
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 1000) as f64 / 1000.0 - 0.5
    };
    let points: Vec<GeoPoint> = day
        .points()
        .iter()
        .map(|p| {
            // ~±5 m of fresh noise in each axis.
            GeoPoint::new_unchecked(p.lat + rnd() * 1e-4, p.lon + rnd() * 1.3e-4)
        })
        .collect();
    let timestamps: Vec<f64> = day
        .timestamps()
        .expect("generated data is timestamped")
        .iter()
        .map(|t| t * (1.0 + 0.05 * rnd()))
        .scan(f64::NEG_INFINITY, |prev, t| {
            // Keep strictly ascending after the pacing jitter.
            let t = if t <= *prev { *prev + 0.5 } else { t };
            *prev = t;
            Some(t)
        })
        .collect();
    Trajectory::with_timestamps(points, timestamps).expect("ascending by construction")
}

/// Sample index → "day N HH:MM" (each generated day starts at 07:00).
fn clock(log: &Trajectory<GeoPoint>, index: usize) -> String {
    let day = index / DAY_LEN + 1;
    let day_start_idx = (index / DAY_LEN) * DAY_LEN;
    let ts = log.timestamps().expect("timestamped");
    let within = ts[index] - ts[day_start_idx];
    let h = 7 + (within / 3600.0) as u32;
    let m = ((within % 3600.0) / 60.0) as u32;
    format!("day {day} {h:02}:{m:02}")
}

fn main() {
    // Three "days": day 1, an unrelated day 2, and day 3 re-walking day 1's
    // commute — like the paper's April 10 vs April 12 motif.
    let day1 = gen::geolife_like(DAY_LEN, 101);
    let day2 = gen::geolife_like(DAY_LEN, 202);
    let day3 = rewalk(&day1, 0xBEEF);
    let log = day1.concat(day2).concat(day3);
    println!(
        "3-day log: {} samples, {:.1} km",
        log.len(),
        log.path_length() / 1000.0
    );

    let config = MotifConfig::new(60);
    let motif = GtmStar
        .discover(&log, &config)
        .expect("log long enough for ξ = 60");

    println!("repeated route found (DFD = {:.1} m):", motif.distance);
    println!(
        "  red:  {} - {}",
        clock(&log, motif.first.0),
        clock(&log, motif.first.1)
    );
    println!(
        "  blue: {} - {}",
        clock(&log, motif.second.0),
        clock(&log, motif.second.1)
    );

    let first = log.sub(motif.first.0, motif.first.1).unwrap();
    let second = log.sub(motif.second.0, motif.second.1).unwrap();
    println!(
        "  first half {} pts from ({:.5}, {:.5}); second half {} pts from ({:.5}, {:.5})",
        first.len(),
        first.points()[0].lat,
        first.points()[0].lon,
        second.len(),
        second.points()[0].lat,
        second.points()[0].lon
    );

    // The two halves should come from different days of the log.
    let day_of = |idx: usize| idx / DAY_LEN;
    assert_ne!(
        day_of(motif.first.0),
        day_of(motif.second.0),
        "motif halves should span different days"
    );
}
