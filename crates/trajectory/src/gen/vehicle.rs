//! Truck-like vehicle trajectory generator.
//!
//! The Truck dataset contains "276 trajectories of 50 trucks moving in
//! Athens metropolitan area … carrying concrete to several construction
//! sites for 33 days" (Section 6.1). The defining property is **route
//! repetition**: a truck shuttles between a depot and a small set of sites
//! along the same road network, producing many nearly identical
//! subtrajectories (low-DFD motifs) — the regime in which a good `bsf`
//! is found early and pruning is most effective.
//!
//! The generator lays out a depot and construction sites on a jittered
//! Manhattan-style road grid and drives depot → site → depot cycles with
//! per-trip lateral jitter, stop-and-go speed, and ~30 s sampling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::{randn, step_m};
use crate::point::GeoPoint;
use crate::trajectory::{Trajectory, TrajectoryBuilder};

/// Athens city centre.
const BASE_LAT: f64 = 37.9838;
const BASE_LON: f64 = 23.7275;

/// Road-grid pitch in metres.
const GRID_M: f64 = 400.0;

/// GPS noise standard deviation in metres (vehicle-grade receivers).
const GPS_NOISE_M: f64 = 6.0;

/// Generates a Truck-like vehicle trajectory with exactly `n` points.
#[must_use]
pub fn truck_like(n: usize, seed: u64) -> Trajectory<GeoPoint> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x545255); // "TRU"
    let mut builder = TrajectoryBuilder::with_capacity(n);

    // Depot at the origin of a grid; sites at grid nodes within ~6 km.
    let depot = (0_i64, 0_i64);
    let n_sites = rng.gen_range(3..=7);
    let sites: Vec<(i64, i64)> = (0..n_sites)
        .map(|_| (rng.gen_range(-15..=15), rng.gen_range(-15..=15)))
        .collect();

    // A truck favours a couple of sites (concrete pours repeat), which
    // guarantees exact route repetition.
    let favourite = sites[rng.gen_range(0..sites.len())];

    let mut t = 0.0_f64;
    let mut emitted = 0;

    // Current integer grid position and the leg plan.
    let mut pos = depot;
    let mut going_out = true;
    let mut target = favourite;

    // Per-trip lateral jitter (same route, slightly different lane/GPS).
    let mut trip_jitter_m = randn(&mut rng) * 8.0;

    'outer: while emitted < n {
        // Plan an L-shaped (Manhattan) path: first east/west, then
        // north/south — deterministic per (from, to) pair, like a road net.
        let waypoints = l_path(pos, target);
        for (wx, wy) in waypoints {
            // Drive one grid edge in several samples.
            let steps = rng.gen_range(2..=4);
            for s in 1..=steps {
                let frac = s as f64 / steps as f64;
                let fx = pos.0 as f64 + (wx - pos.0) as f64 * frac;
                let fy = pos.1 as f64 + (wy - pos.1) as f64 * frac;
                // Stop-and-go: 30 s nominal gap, sometimes idling at lights.
                let dt = if rng.gen_bool(0.1) {
                    30.0 + rng.gen_range(10.0..90.0)
                } else {
                    30.0 + randn(&mut rng).abs() * 3.0
                };
                t += dt;
                let (lat, lon) = step_m(
                    BASE_LAT,
                    BASE_LON,
                    fy * GRID_M + trip_jitter_m + randn(&mut rng) * GPS_NOISE_M,
                    fx * GRID_M + trip_jitter_m + randn(&mut rng) * GPS_NOISE_M,
                );
                builder
                    .push(GeoPoint::new_unchecked(lat, lon), t)
                    .expect("strictly ascending by construction");
                emitted += 1;
                if emitted >= n {
                    break 'outer;
                }
            }
            pos = (wx, wy);
        }

        // Arrived; dwell (loading/pouring) then turn around.
        t += rng.gen_range(300.0..1200.0);
        if going_out {
            target = depot;
        } else {
            // 60% favourite site (repetition), else a random one.
            target = if rng.gen_bool(0.6) {
                favourite
            } else {
                sites[rng.gen_range(0..sites.len())]
            };
            trip_jitter_m = randn(&mut rng) * 8.0;
        }
        going_out = !going_out;
    }

    builder.build()
}

/// Grid waypoints of an L-shaped path from `from` to `to`: first move along
/// x, then along y, one grid node at a time.
fn l_path(from: (i64, i64), to: (i64, i64)) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    let step_x = (to.0 - from.0).signum();
    let mut x = from.0;
    while x != to.0 {
        x += step_x;
        out.push((x, from.1));
    }
    let step_y = (to.1 - from.1).signum();
    let mut y = from.1;
    while y != to.1 {
        y += step_y;
        out.push((to.0, y));
    }
    if out.is_empty() {
        // Degenerate same-node trip: emit the node itself so the caller
        // still advances.
        out.push(to);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::GroundDistance;

    #[test]
    fn l_path_connects_endpoints() {
        let p = l_path((0, 0), (3, -2));
        assert_eq!(p.first(), Some(&(1, 0)));
        assert_eq!(p.last(), Some(&(3, -2)));
        // Each hop is one grid edge.
        let mut prev = (0, 0);
        for &(x, y) in &p {
            assert_eq!((x - prev.0).abs() + (y - prev.1).abs(), 1);
            prev = (x, y);
        }
        assert_eq!(l_path((2, 2), (2, 2)), vec![(2, 2)]);
    }

    #[test]
    fn stays_metro_scale() {
        let t = truck_like(3000, 11);
        let base = GeoPoint::new_unchecked(BASE_LAT, BASE_LON);
        for p in t.points() {
            assert!(p.distance(&base) < 20_000.0);
        }
    }

    #[test]
    fn routes_repeat() {
        // Some position early in the trace must be revisited closely later —
        // the depot if nothing else.
        let t = truck_like(2500, 12);
        let depot_probe = t[0];
        let mut revisits = 0;
        for i in 500..t.len() {
            if t[i].distance(&depot_probe) < 150.0 {
                revisits += 1;
            }
        }
        assert!(revisits > 0, "truck never returned to the depot area");
    }

    #[test]
    fn sampling_is_coarser_than_geolife() {
        let t = truck_like(1000, 13);
        let ts = t.timestamps().unwrap();
        let mean_gap = (ts[ts.len() - 1] - ts[0]) / (ts.len() - 1) as f64;
        assert!(mean_gap >= 25.0, "mean gap {mean_gap}");
    }
}
