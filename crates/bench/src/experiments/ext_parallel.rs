//! Extension experiment: parallel BTM scaling across worker counts.

use fremo_core::{MotifConfig, MotifDiscovery, ParallelBtm};
use fremo_trajectory::gen::Dataset;

use crate::experiments::Titled;
use crate::runner::{average, run_algorithm, Algorithm, Measurement};
use crate::scale::Scale;
use crate::table::{fmt_secs, Table};
use crate::workload::trajectories;

/// Regenerates the parallel-scaling table.
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let n = scale.default_n();
    let xi = scale.default_xi();
    let reps = scale.repetitions();
    let cfg = MotifConfig::new(xi);
    let ts = trajectories(Dataset::GeoLife, n, reps, 3100);

    let serial: Vec<Measurement> = ts
        .iter()
        .map(|t| run_algorithm(Algorithm::Btm, t, &cfg).0)
        .collect();
    let serial_avg = average(&serial);

    let mut table = Table::new(vec!["workers", "time (s)", "speedup vs serial BTM"]);
    table.row(vec![
        "serial".to_string(),
        fmt_secs(serial_avg.seconds),
        "1.00x".to_string(),
    ]);
    for workers in [1usize, 2, 4, 8] {
        let alg = ParallelBtm::new(workers);
        let mut times = Vec::new();
        for (t, base) in ts.iter().zip(&serial) {
            let (motif, stats) = alg.discover_with_stats(t, &cfg);
            times.push(stats.total_seconds);
            let d = motif.expect("motif").distance;
            assert!(
                (d - base.distance.expect("motif")).abs() < 1e-9,
                "parallel result diverged"
            );
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        table.row(vec![
            workers.to_string(),
            fmt_secs(mean),
            format!("{:.2}x", serial_avg.seconds / mean.max(1e-12)),
        ]);
    }

    vec![(
        format!("Extension: parallel BTM scaling (n={n}, xi={xi}, GeoLife-like)"),
        table,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_smoke_scale() {
        let out = run(Scale::Smoke);
        assert!(out[0].1.render().contains("serial"));
    }
}
