//! Facade overhead: the `Engine` must add <5% over a direct `Btm` call
//! on a cold motif query, and a warm cache must *win* by skipping the
//! `O(n²)` precomputation.
//!
//! Runs the three variants through criterion for the usual JSON report,
//! then verifies the <5% cold-overhead claim on medians of explicit
//! repetitions (medians, not means, to shrug off scheduler noise).

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use fremo_bench::workload::corpus;
use fremo_core::engine::{AlgorithmChoice, Query};
use fremo_core::{Btm, MotifConfig, MotifDiscovery};
use fremo_trajectory::gen::Dataset;
use fremo_trajectory::{GeoPoint, Trajectory};

const N: usize = 300;
const XI: usize = 15;

fn workload() -> (Trajectory<GeoPoint>, MotifConfig) {
    (Dataset::GeoLife.generate(N, 7), MotifConfig::new(XI))
}

fn query(id: fremo_core::engine::TrajId) -> Query {
    Query::motif(id)
        .xi(XI)
        .algorithm(AlgorithmChoice::Btm)
        .build()
}

fn bench_overhead(c: &mut Criterion) {
    let (t, cfg) = workload();
    let mut group = c.benchmark_group("engine_overhead");
    group.sample_size(10);

    group.bench_function("direct_btm", |b| {
        b.iter(|| Btm.discover_with_stats(std::hint::black_box(&t), &cfg))
    });

    group.bench_function("engine_btm_cold", |b| {
        let (engine, ids) = corpus(Dataset::GeoLife, N, 1, 7);
        let q = query(ids[0]);
        b.iter(|| {
            engine.clear_cache();
            engine.execute(std::hint::black_box(&q)).unwrap()
        })
    });

    group.bench_function("engine_btm_warm", |b| {
        let (engine, ids) = corpus(Dataset::GeoLife, N, 1, 7);
        let q = query(ids[0]);
        b.iter(|| engine.execute(std::hint::black_box(&q)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_overhead);

fn median_seconds(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One measurement round: medians of `reps` interleaved runs. Returns
/// `(direct, cold, warm)` median seconds.
fn measure_medians(reps: usize) -> (f64, f64, f64) {
    let (t, cfg) = workload();
    let (engine, ids) = corpus(Dataset::GeoLife, N, 1, 7);
    let q = query(ids[0]);

    let mut direct = Vec::with_capacity(reps);
    let mut cold = Vec::with_capacity(reps);
    let mut warm = Vec::with_capacity(reps);
    for _ in 0..reps {
        // Interleave so drift hits both sides equally.
        let s = Instant::now();
        let d = Btm.discover_with_stats(&t, &cfg);
        direct.push(s.elapsed().as_secs_f64());
        std::hint::black_box(&d);

        engine.clear_cache();
        let s = Instant::now();
        let o = engine.execute(&q).unwrap();
        cold.push(s.elapsed().as_secs_f64());
        std::hint::black_box(&o);

        let s = Instant::now();
        let o = engine.execute(&q).unwrap();
        warm.push(s.elapsed().as_secs_f64());
        std::hint::black_box(&o);
    }

    (
        median_seconds(direct),
        median_seconds(cold),
        median_seconds(warm),
    )
}

/// The <5% verdict. Timing noise on a loaded machine can push a
/// millisecond-scale median past the margin, so a failed first round is
/// re-measured once before the assert fires.
fn verify_overhead() {
    let reps = 21;
    let mut rounds = 0;
    let (d, c, w) = loop {
        rounds += 1;
        let (d, c, w) = measure_medians(reps);
        if c / d - 1.0 < 0.05 || rounds == 2 {
            break (d, c, w);
        }
        eprintln!(
            "engine_overhead: noisy first round (cold {:.2}% over direct); re-measuring",
            (c / d - 1.0) * 100.0
        );
    };
    let overhead = c / d - 1.0;
    println!("engine_overhead verdict (medians of {reps} runs, n={N}, ξ={XI}):");
    println!("  direct BTM        {:>10.3} ms", d * 1e3);
    println!(
        "  engine cold cache {:>10.3} ms  ({:+.2}% vs direct)",
        c * 1e3,
        overhead * 100.0
    );
    println!(
        "  engine warm cache {:>10.3} ms  ({:.2}x speedup vs direct)",
        w * 1e3,
        d / w
    );
    if std::env::var_os("FREMO_OVERHEAD_TOLERATE").is_some() {
        // Escape hatch for loaded/shared machines: report, don't fail.
        if overhead >= 0.05 {
            eprintln!(
                "engine_overhead: {:.2}% exceeds the 5% budget (tolerated by \
                 FREMO_OVERHEAD_TOLERATE)",
                overhead * 100.0
            );
        }
        return;
    }
    assert!(
        overhead < 0.05,
        "engine facade added {:.2}% over direct BTM (budget: 5%); \
         set FREMO_OVERHEAD_TOLERATE=1 on loaded machines",
        overhead * 100.0
    );
}

fn main() {
    benches();
    verify_overhead();
}
