// L6 firing fixture (linted under a kernel path such as
// crates/core/src/dp.rs): f32 arithmetic inside an exact kernel.

pub fn cell(a: f64, b: f64) -> f64 {
    let narrowed = a as f32;
    let scale = 1.5f32;
    f64::from(narrowed * scale) + b
}
