//! Per-lint fixture tests: each lint has a firing fixture that produces
//! only that lint's findings (and goes quiet when the lint is disabled,
//! proving the finding comes from that pass and not a neighbour) and a
//! clean fixture that produces none.

use fremo_lint::{lint_source, run_workspace, LintId, Options};
use std::collections::BTreeSet;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

/// Lints fixture text under a virtual in-scope path.
fn lint_fixture(name: &str, virtual_path: &str, opts: &Options) -> Vec<fremo_lint::Finding> {
    lint_source(virtual_path, &fixture(name), opts)
}

fn disabled(id: LintId) -> Options {
    let mut set = BTreeSet::new();
    set.insert(id);
    Options { disabled: set }
}

/// The core assertion: the firing fixture yields findings for exactly
/// `id` (nothing else), and disabling `id` silences the file entirely.
fn assert_fires_only(name: &str, virtual_path: &str, id: LintId) {
    let findings = lint_fixture(name, virtual_path, &Options::default());
    assert!(
        !findings.is_empty(),
        "{name}: expected {} findings, got none",
        id.as_str()
    );
    for f in &findings {
        assert_eq!(
            f.lint,
            id,
            "{name}: expected only {} findings, got {f}",
            id.as_str()
        );
    }
    let silenced = lint_fixture(name, virtual_path, &disabled(id));
    assert!(
        silenced.is_empty(),
        "{name}: disabling {} should silence the fixture, got {silenced:?}",
        id.as_str()
    );
}

fn assert_clean(name: &str, virtual_path: &str) {
    let findings = lint_fixture(name, virtual_path, &Options::default());
    assert!(
        findings.is_empty(),
        "{name}: expected clean, got {findings:?}"
    );
}

const CORE_PATH: &str = "crates/core/src/fixture.rs";
const KERNEL_PATH: &str = "crates/core/src/dp.rs";

#[test]
fn l1_partial_cmp_and_raw_comparators_fire() {
    assert_fires_only("l1_firing.rs", CORE_PATH, LintId::L1);
}

#[test]
fn l1_total_orders_are_clean() {
    assert_clean("l1_clean.rs", CORE_PATH);
}

#[test]
fn l2_hash_iteration_fires() {
    assert_fires_only("l2_firing.rs", CORE_PATH, LintId::L2);
}

#[test]
fn l2_keyed_lookups_and_btree_iteration_are_clean() {
    assert_clean("l2_clean.rs", CORE_PATH);
}

#[test]
fn l3_panicking_calls_fire() {
    assert_fires_only("l3_firing.rs", CORE_PATH, LintId::L3);
}

#[test]
fn l3_propagated_errors_tests_and_reasoned_suppression_are_clean() {
    assert_clean("l3_clean.rs", CORE_PATH);
}

#[test]
fn l3_is_scoped_to_core_and_similarity() {
    // The same panicking source outside the scoped crates is not a
    // finding (the CLI crates may unwrap at the top level).
    assert_clean("l3_firing.rs", "crates/cli/src/main.rs");
}

#[test]
fn l4_unjustified_relaxed_and_unsafe_fire() {
    assert_fires_only("l4_firing.rs", CORE_PATH, LintId::L4);
}

#[test]
fn l4_justified_sites_are_clean() {
    assert_clean("l4_clean.rs", CORE_PATH);
}

#[test]
fn l5_allow_without_reason_fires() {
    assert_fires_only("l5_firing.rs", CORE_PATH, LintId::L5);
}

#[test]
fn l5_reasoned_allow_is_clean() {
    assert_clean("l5_clean.rs", CORE_PATH);
}

#[test]
fn l6_f32_in_kernel_fires() {
    assert_fires_only("l6_firing.rs", KERNEL_PATH, LintId::L6);
}

#[test]
fn l6_fires_on_every_kernel_file_but_not_elsewhere() {
    for kernel in ["dp.rs", "brute.rs", "matrix.rs"] {
        let path = format!("crates/core/src/{kernel}");
        assert_fires_only("l6_firing.rs", &path, LintId::L6);
    }
    // f32 outside the exact kernels is allowed.
    assert_clean("l6_firing.rs", CORE_PATH);
}

#[test]
fn l6_exact_kernel_is_clean() {
    assert_clean("l6_clean.rs", KERNEL_PATH);
}

#[test]
fn l0_malformed_unknown_and_unused_suppressions_fire() {
    let findings = lint_fixture("l0_firing.rs", CORE_PATH, &Options::default());
    let l0: Vec<_> = findings.iter().filter(|f| f.lint == LintId::L0).collect();
    assert_eq!(l0.len(), 3, "expected 3 L0 findings, got {findings:?}");
    let msgs: Vec<&str> = l0.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("-- <reason>")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("unknown lint id")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("unused suppression")),
        "{msgs:?}"
    );
    // The malformed suppression does not mask the underlying L3.
    assert!(
        findings.iter().any(|f| f.lint == LintId::L3),
        "malformed suppression must not cover the finding: {findings:?}"
    );
}

#[test]
fn l0_used_reasoned_suppression_is_clean() {
    assert_clean("l0_clean.rs", CORE_PATH);
}

#[test]
fn test_paths_are_exempt_from_source_lints() {
    // Firing content under tests/ never produces findings.
    let findings = lint_fixture(
        "l3_firing.rs",
        "crates/core/tests/fixture.rs",
        &Options::default(),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

fn ws_root(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn l7_stale_doc_symbol_fires() {
    let report = run_workspace(&ws_root("ws_firing"), &Options::default()).expect("lint ws_firing");
    let l7: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == LintId::L7)
        .collect();
    assert_eq!(
        l7.len(),
        1,
        "expected one L7 finding, got {:?}",
        report.findings
    );
    assert_eq!(l7[0].file, "docs/guide.md");
    assert!(
        l7[0].message.contains("Engine::missing_method"),
        "{}",
        l7[0].message
    );
    // Disabling L7 removes exactly the doc finding.
    let without = run_workspace(&ws_root("ws_firing"), &disabled(LintId::L7))
        .expect("lint ws_firing without L7");
    assert!(without.findings.iter().all(|f| f.lint != LintId::L7));
    assert_eq!(without.findings.len(), report.findings.len() - 1);
}

#[test]
fn l7_resolvable_doc_symbols_are_clean() {
    let report = run_workspace(&ws_root("ws_clean"), &Options::default()).expect("lint ws_clean");
    assert!(report.clean(), "{:?}", report.findings);
    assert_eq!(report.docs_scanned, 1);
}
