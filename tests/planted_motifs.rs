//! Ground-truth tests on planted-motif workloads: a noisy copy of an
//! earlier segment is embedded in a random walk, certifying an upper bound
//! on the optimal motif DFD.

use fremo::prelude::*;
use fremo::trajectory::gen::planted;

#[test]
fn discovered_motif_beats_the_plant() {
    for seed in 0..5 {
        let noise = 5.0;
        let motif_len = 20;
        let (t, plant) = planted(260, motif_len, noise, seed);
        // ξ small enough that the planted halves qualify:
        // length motif_len ⇒ ie - i = motif_len - 1 > ξ.
        let xi = motif_len - 2;
        let cfg = MotifConfig::new(xi).with_group_size(8);
        let m = Gtm.discover(&t, &cfg).expect("motif");
        assert!(
            m.distance <= noise + 1e-6,
            "seed {seed}: optimal {} exceeds planted bound {noise} (plant at {plant:?})",
            m.distance
        );
    }
}

#[test]
fn all_algorithms_find_the_same_optimum_on_plants() {
    let (t, _) = planted(220, 16, 3.0, 42);
    let cfg = MotifConfig::new(10).with_group_size(8);
    let d_brute = BruteDp.discover(&t, &cfg).unwrap().distance;
    for (name, d) in [
        ("BTM", Btm.discover(&t, &cfg).unwrap().distance),
        ("GTM", Gtm.discover(&t, &cfg).unwrap().distance),
        ("GTM*", GtmStar.discover(&t, &cfg).unwrap().distance),
    ] {
        assert!((d - d_brute).abs() < 1e-9, "{name}: {d} vs {d_brute}");
    }
}

#[test]
fn found_halves_do_not_overlap() {
    let (t, _) = planted(300, 24, 4.0, 7);
    let cfg = MotifConfig::new(12);
    let m = Btm.discover(&t, &cfg).expect("motif");
    let first = t.sub(m.first.0, m.first.1).unwrap();
    let second = t.sub(m.second.0, m.second.1).unwrap();
    assert!(!first.overlaps(&second));
    assert!(m.first.1 < m.second.0);
}

#[test]
fn tighter_noise_gives_tighter_motif() {
    // Two plants differing only in noise: the low-noise instance must
    // admit a lower (or equal) optimal DFD.
    let (loud, _) = planted(240, 18, 12.0, 11);
    let (quiet, _) = planted(240, 18, 1.0, 11);
    let cfg = MotifConfig::new(10);
    let d_loud = Gtm.discover(&loud, &cfg).unwrap().distance;
    let d_quiet = Gtm.discover(&quiet, &cfg).unwrap().distance;
    assert!(
        d_quiet <= d_loud + 1e-9,
        "quiet plant ({d_quiet}) should beat loud plant ({d_loud})"
    );
    assert!(d_quiet <= 1.0 + 1e-6);
}
