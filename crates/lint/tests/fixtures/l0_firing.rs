// L0 firing fixture: suppression hygiene violations.

// fremo-lint: allow(L3)
pub fn missing_reason(xs: &[u64]) -> u64 {
    *xs.first().expect("non-empty")
}

// fremo-lint: allow(L9) -- there is no ninth lint
pub fn unknown_id() {}

// fremo-lint: allow(L4) -- nothing on the next line is an atomic
pub fn unused_suppression() {}
