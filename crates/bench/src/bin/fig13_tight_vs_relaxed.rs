//! Regenerates Figure 13 (tight vs relaxed bounds, vs n).
use fremo_bench::experiments::{fig13_tight_vs_relaxed, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = fig13_tight_vs_relaxed::run(scale);
    print_all("Figure 13 (tight vs relaxed bounds, vs n)", &tables);
}
