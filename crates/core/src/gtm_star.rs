//! `GTM*` (Section 5.5): the space-efficient variant of GTM.
//!
//! Three ideas: (i) ground distances are computed on the fly (no `dG`
//! matrix), (ii) the DP uses `O(n)` space (two rolling rows — which the
//! shared [`crate::dp::expand_subset`] already does), and (iii) the
//! grouping loop runs exactly once at the configured τ. Space drops to
//! `O(max{(n/τ)², n})` while time grows because more group pairs survive a
//! single level and every `dG` access recomputes a distance.

use std::time::Instant;

use fremo_trajectory::{DistanceSource, GroundDistance, LazyDistances, Trajectory};

use crate::algorithm::MotifDiscovery;
use crate::bounds::{BoundTables, RelaxedTables};
use crate::config::MotifConfig;
use crate::domain::Domain;
use crate::dp::{Bsf, DpBuffers};
use crate::group::{GroupGrid, GroupMatrices};
use crate::gtm::{initial_pairs, process_group_level, truncated_mid_grouping, GroupPatternBounds};
use crate::result::Motif;
use crate::search::{build_entries, list_bytes, process_sorted_subsets, ListEntry, SearchBudget};
use crate::stats::SearchStats;

/// The space-efficient grouping solution of Section 5.5.
#[derive(Debug, Clone, Copy, Default)]
pub struct GtmStar;

impl GtmStar {
    /// Runs GTM* over any distance source and an external DP buffer.
    /// `prepared` may carry relaxed bound tables built earlier (the
    /// engine caches them per trajectory); tight tables are ignored —
    /// GTM* always uses the relaxed `O(1)` bounds, because tight tables
    /// would reintroduce the `O(n²)` memory it exists to avoid.
    ///
    /// The third return value is `false` when `budget` truncated the
    /// search (the [`crate::engine::Engine`] surfaces it as `truncated`).
    ///
    /// The single grouping level runs serially (see [`crate::gtm::Gtm`]);
    /// `threads >= 1` runs the final best-first stage through the
    /// parallel execution layer — ground distances are then recomputed
    /// concurrently by each worker, preserving GTM*'s `O(max{(n/τ)², n})`
    /// space bound.
    // lint: internal search-kernel entry threading prepared state; a
    // param struct would churn every call site without adding clarity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run<D: DistanceSource + Sync>(
        src: &D,
        domain: Domain,
        config: &MotifConfig,
        started: Instant,
        buf: &mut DpBuffers,
        budget: Option<&SearchBudget>,
        prepared: Option<&BoundTables>,
        threads: usize,
    ) -> (Option<Motif>, SearchStats, bool) {
        let xi = config.min_length;
        let sel = config.bounds;

        let tables_local;
        let tables: &BoundTables = match prepared.filter(|t| t.as_relaxed().is_some()) {
            Some(t) => t,
            None => {
                tables_local = BoundTables::Relaxed(RelaxedTables::build(src, domain, xi));
                &tables_local
            }
        };
        // fremo-lint: allow(L3) -- the match above either verified
        // `as_relaxed().is_some()` or built relaxed tables itself.
        let relaxed = tables.as_relaxed().expect("relaxed by construction");

        let mut stats = SearchStats {
            bytes_distance_matrix: src.bytes(), // 0 for LazyDistances
            bytes_bounds: relaxed.bytes(),
            subsets_total: domain.subsets_count(xi),
            pairs_total: domain.pairs_count(xi),
            precompute_seconds: started.elapsed().as_secs_f64(),
            ..SearchStats::default()
        };

        let max_len = domain.len_a().max(domain.len_b()).max(1);
        let mut tau = config.group_size.next_power_of_two().max(1);
        while tau > max_len {
            tau /= 2;
        }

        let mut bsf = Bsf::new();

        // Single grouping level (Idea iii).
        let survivors = if tau > 1 {
            let gm = GroupMatrices::build(src, domain, tau);
            stats.bytes_groups = gm.bytes();
            let pattern = GroupPatternBounds::build(relaxed, &gm.grid);
            let pairs = initial_pairs(domain, xi, &gm.grid);
            process_group_level(&gm, &pattern, domain, xi, sel, &pairs, &mut bsf, &mut stats)
        } else {
            initial_pairs(domain, xi, &GroupGrid::new(domain, 1))
        };

        // Honor a wall-clock budget before the (possibly large) block
        // expansion; the final stage re-checks it per subset.
        if budget.is_some_and(|b| b.exceeded(stats.subsets_expanded)) {
            return truncated_mid_grouping(stats, started);
        }

        // Expand surviving blocks directly into candidate subsets.
        let grid = GroupGrid::new(domain, tau);
        let mut starts = Vec::new();
        for &(u, v) in &survivors {
            let (Some((alo, ahi)), Some((blo, bhi))) =
                (grid.range_a(u as usize), grid.range_b(v as usize))
            else {
                continue;
            };
            for i in alo..=ahi {
                for j in blo..=bhi {
                    if domain.subset_nonempty(i, j, xi) {
                        starts.push((i, j));
                    }
                }
            }
        }
        let mut entries: Vec<ListEntry> = build_entries(src, tables, sel, starts.into_iter());
        stats.bytes_lists = stats.bytes_lists.max(list_bytes(&entries));

        let completed = if threads > 0 {
            crate::parallel::process_sorted_subsets_parallel(
                src,
                domain,
                xi,
                sel,
                tables,
                &mut entries,
                None,
                &mut bsf,
                &mut stats,
                budget,
                threads,
                true,
            )
        } else {
            stats.threads_used = 1;
            process_sorted_subsets(
                src,
                domain,
                xi,
                sel,
                tables,
                &mut entries,
                &mut bsf,
                &mut stats,
                buf,
                budget,
            )
        };

        // Recorded after the scan: a shared engine buffer grows lazily;
        // a parallel scan already recorded its workers' buffers instead.
        stats.bytes_dp = stats.bytes_dp.max(buf.bytes_for_width(domain.len_b()));
        stats.total_seconds = started.elapsed().as_secs_f64();
        (bsf.motif, stats, completed)
    }
}

impl<P: GroundDistance + Sync> MotifDiscovery<P> for GtmStar {
    fn name(&self) -> &'static str {
        "GTM*"
    }

    fn discover_with_stats(
        &self,
        trajectory: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let domain = Domain::Within {
            n: trajectory.len(),
        };
        let src = LazyDistances::within(trajectory.points());
        let mut buf = DpBuffers::with_width(domain.len_b());
        let (motif, stats, _) = Self::run(&src, domain, config, started, &mut buf, None, None, 0);
        (motif, stats)
    }

    fn discover_between_with_stats(
        &self,
        a: &Trajectory<P>,
        b: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let domain = Domain::Between {
            n: a.len(),
            m: b.len(),
        };
        let src = LazyDistances::between(a.points(), b.points());
        let mut buf = DpBuffers::with_width(domain.len_b());
        let (motif, stats, _) = Self::run(&src, domain, config, started, &mut buf, None, None, 0);
        (motif, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteDp;
    use crate::btm::Btm;
    use crate::gtm::Gtm;
    use fremo_trajectory::gen::planar;

    #[test]
    fn agrees_with_brutedp_on_random_walks() {
        for seed in 0..6 {
            let t = planar::random_walk(48, 0.35, seed);
            let cfg = MotifConfig::new(3).with_group_size(8);
            let brute = BruteDp.discover(&t, &cfg).expect("brute");
            let star = GtmStar.discover(&t, &cfg).expect("gtm*");
            assert!(
                (brute.distance - star.distance).abs() < 1e-12,
                "seed {seed}: brute={} gtm*={}",
                brute.distance,
                star.distance
            );
        }
    }

    #[test]
    fn all_four_algorithms_agree() {
        let t = planar::random_walk(56, 0.45, 99);
        let cfg = MotifConfig::new(4).with_group_size(8);
        let d_brute = BruteDp.discover(&t, &cfg).unwrap().distance;
        let d_btm = Btm.discover(&t, &cfg).unwrap().distance;
        let d_gtm = Gtm.discover(&t, &cfg).unwrap().distance;
        let d_star = GtmStar.discover(&t, &cfg).unwrap().distance;
        assert!((d_brute - d_btm).abs() < 1e-12);
        assert!((d_brute - d_gtm).abs() < 1e-12);
        assert!((d_brute - d_star).abs() < 1e-12);
    }

    #[test]
    fn uses_no_distance_matrix_memory() {
        let t = planar::random_walk(64, 0.4, 3);
        let cfg = MotifConfig::new(4).with_group_size(8);
        let (motif, stats) = GtmStar.discover_with_stats(&t, &cfg);
        assert!(motif.is_some());
        assert_eq!(stats.bytes_distance_matrix, 0);
        // Bound arrays are linear: far below n² × 8.
        assert!(stats.bytes_bounds < 64 * 64 * 8 / 2);
    }

    #[test]
    fn between_agrees_with_btm() {
        let a = planar::random_walk(40, 0.4, 7);
        let b = planar::random_walk(36, 0.4, 8);
        let cfg = MotifConfig::new(3).with_group_size(8);
        let btm = Btm.discover_between(&a, &b, &cfg).unwrap();
        let star = GtmStar.discover_between(&a, &b, &cfg).unwrap();
        assert!((btm.distance - star.distance).abs() < 1e-12);
    }

    #[test]
    fn degenerate_tau_one_still_works() {
        let t = planar::random_walk(30, 0.4, 5);
        let cfg = MotifConfig::new(2).with_group_size(1);
        let brute = BruteDp.discover(&t, &cfg).unwrap();
        let star = GtmStar.discover(&t, &cfg).unwrap();
        assert!((brute.distance - star.distance).abs() < 1e-12);
    }
}
