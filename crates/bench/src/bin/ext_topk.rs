//! Regenerates the ext_topk extension experiment.
use fremo_bench::experiments::{ext_topk, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = ext_topk::run(scale);
    print_all("ext_topk", &tables);
}
