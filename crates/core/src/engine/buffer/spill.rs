//! Disk spill tier for evicted distance matrices.
//!
//! A cold `DenseMatrix` costs `O(n²)` ground-distance evaluations to
//! rebuild but only a sequential file read to rehydrate, so when the
//! engine is given a spill directory (`Engine::with_spill_dir`), matrix
//! victims are written out instead of dropped and reloaded on the next
//! miss. Bound tables are never spilled: they are an order of magnitude
//! smaller and derived from the matrix in `O(n²)` *lookups*, not
//! distance evaluations, so rebuilding them is cheap once the matrix is
//! back.
//!
//! ## File format (`FMX1`)
//!
//! One file per matrix, length-prefixed, little-endian:
//!
//! ```text
//! offset  size          field
//! 0       4             magic "FMX1"
//! 4       8             len_a  (u64 LE)
//! 12      8             len_b  (u64 LE)
//! 20      8·len_a·len_b row-major cell bits (f64::to_bits, u64 LE)
//! ```
//!
//! Cells round-trip through [`f64::to_bits`]/[`f64::from_bits`], so a
//! rehydrated matrix is **bit-identical** to the evicted one — the same
//! guarantee the parallel matrix builders give, and what keeps spilled
//! and resident queries returning identical answers. Writes go to a
//! `.tmp` sibling and are renamed into place; loads validate the magic,
//! the header sizes, and the exact file length, and any mismatch is
//! treated as a miss (the matrix is rebuilt) rather than an error.
//!
//! Matrices are immutable for a given corpus entry, so a spill file
//! written once stays valid for the engine's lifetime: re-evicting an
//! already-spilled matrix skips the rewrite. The store namespaces its
//! files under `<dir>/fremo-spill-<pid>-e<engine id>/` so concurrent
//! engines (or processes) sharing a spill root cannot read each other's
//! matrices, and the whole subdirectory is removed when the engine is
//! dropped.
//!
//! The namespaced directory is claimed **eagerly and exclusively**:
//! [`SpillStore::new`] runs `fs::create_dir` (not `create_dir_all`) and
//! errors on collision. The lazy `create_dir_all`-on-first-write this
//! replaces raced when two stores resolved to the same path — one
//! store's `Drop` could remove the directory while the other was
//! writing into it, and the survivor would silently adopt the dead
//! store's write-once files (stale `contains` answers, skipped
//! rewrites). Failing loudly at construction turns that latent race
//! into a configuration error.

use std::fs;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use fremo_trajectory::DenseMatrix;

use super::ScopeKey;

/// Magic prefix of a spill file (format version 1).
const MAGIC: [u8; 4] = *b"FMX1";
/// Bytes before the cell payload: magic + two u64 dimensions.
const HEADER_BYTES: u64 = 4 + 8 + 8;

/// A directory of spilled matrices, private to one engine instance.
#[derive(Debug)]
pub(crate) struct SpillStore {
    /// The namespaced subdirectory (claimed exclusively at construction).
    dir: PathBuf,
}

impl SpillStore {
    /// A store rooted at `root`, namespaced by process and engine id.
    /// Claims the namespaced subdirectory exclusively, creating `root`
    /// itself if needed.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if `root` cannot be created, and
    /// an [`io::ErrorKind::AlreadyExists`] error if the namespaced
    /// directory already exists — another live store owns it, and
    /// sharing write-once spill files between stores is unsound (see the
    /// module docs).
    pub(crate) fn new(root: &Path, engine_id: u64) -> io::Result<Self> {
        let dir = root.join(format!("fremo-spill-{}-e{engine_id}", std::process::id()));
        fs::create_dir_all(root)?;
        fs::create_dir(&dir).map_err(|e| {
            if e.kind() == io::ErrorKind::AlreadyExists {
                io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!(
                        "spill directory {} already exists; refusing to share \
                         write-once spill files with another live store",
                        dir.display()
                    ),
                )
            } else {
                e
            }
        })?;
        Ok(SpillStore { dir })
    }

    /// Deterministic file name for a scope key.
    fn path(&self, key: ScopeKey) -> PathBuf {
        let name = match key {
            ScopeKey::Within(i) => format!("w{i}.fmx"),
            ScopeKey::Between(a, b) => format!("b{a}_{b}.fmx"),
        };
        self.dir.join(name)
    }

    /// Whether a spill file for `key` already exists.
    pub(crate) fn contains(&self, key: ScopeKey) -> bool {
        self.path(key).is_file()
    }

    /// Writes `matrix` to the spill file for `key` (tmp + rename).
    pub(crate) fn store(&self, key: ScopeKey, matrix: &DenseMatrix) -> io::Result<()> {
        use fremo_trajectory::DistanceSource as _;
        let path = self.path(key);
        let tmp = path.with_extension("tmp");
        {
            let mut w = BufWriter::new(fs::File::create(&tmp)?);
            w.write_all(&MAGIC)?;
            w.write_all(&(matrix.len_a() as u64).to_le_bytes())?;
            w.write_all(&(matrix.len_b() as u64).to_le_bytes())?;
            for cell in matrix.raw() {
                w.write_all(&cell.to_bits().to_le_bytes())?;
            }
            w.flush()?;
        }
        fs::rename(&tmp, &path)
    }

    /// Reads the matrix spilled for `key` back, or `None` when there is
    /// no file or it fails validation (wrong magic, header/length
    /// mismatch, I/O error) — callers treat that as a cache miss.
    pub(crate) fn load(&self, key: ScopeKey) -> Option<DenseMatrix> {
        let path = self.path(key);
        let file = fs::File::open(&path).ok()?;
        let file_len = file.metadata().ok()?.len();
        let mut r = BufReader::new(file);

        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).ok()?;
        if magic != MAGIC {
            return None;
        }
        let mut word = [0u8; 8];
        r.read_exact(&mut word).ok()?;
        let len_a = u64::from_le_bytes(word);
        r.read_exact(&mut word).ok()?;
        let len_b = u64::from_le_bytes(word);

        // Validate the exact file length before allocating anything, so a
        // truncated or padded file can never yield a half-filled matrix.
        let cells = len_a.checked_mul(len_b)?;
        let expected = HEADER_BYTES.checked_add(cells.checked_mul(8)?)?;
        if file_len != expected {
            return None;
        }
        let cells = usize::try_from(cells).ok()?;
        let mut data = Vec::with_capacity(cells);
        for _ in 0..cells {
            r.read_exact(&mut word).ok()?;
            data.push(f64::from_bits(u64::from_le_bytes(word)));
        }
        Some(DenseMatrix::from_raw(len_a as usize, len_b as usize, data))
    }

    /// Removes every spill file (the engine cache was cleared) while
    /// keeping the exclusively-claimed directory itself alive.
    pub(crate) fn clear(&self) {
        let _ = fs::remove_dir_all(&self.dir);
        let _ = fs::create_dir(&self.dir);
    }
}

impl Drop for SpillStore {
    /// Spill files are scratch state, not a persistence format: remove
    /// the store's private subdirectory with the engine, releasing the
    /// exclusive claim taken in [`SpillStore::new`].
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_trajectory::DistanceSource as _;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fremo-spill-test-{}-{tag}", std::process::id()))
    }

    fn sample_matrix() -> DenseMatrix {
        // Include negative zero, an exact NaN pattern, and infinities so
        // "bit-identical" is tested beyond ordinary values.
        DenseMatrix::from_raw(
            2,
            3,
            vec![
                0.5,
                -0.0,
                f64::INFINITY,
                f64::from_bits(0x7ff8_0000_0000_1234),
                1e-300,
                -3.25,
            ],
        )
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let root = scratch("roundtrip");
        let store = SpillStore::new(&root, 1).unwrap();
        let m = sample_matrix();
        let key = ScopeKey::Between(3, 7);
        assert!(!store.contains(key));
        store.store(key, &m).unwrap();
        assert!(store.contains(key));
        let back = store.load(key).expect("valid spill file");
        assert_eq!(back.len_a(), m.len_a());
        assert_eq!(back.len_b(), m.len_b());
        for (a, b) in m.raw().iter().zip(back.raw()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        drop(store);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn corrupt_or_missing_files_are_misses() {
        let root = scratch("corrupt");
        let store = SpillStore::new(&root, 2).unwrap();
        let key = ScopeKey::Within(4);
        assert!(store.load(key).is_none(), "missing file is a miss");

        store.store(key, &sample_matrix()).unwrap();
        let path = store.path(key);

        // Truncated payload.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 8]).unwrap();
        assert!(store.load(key).is_none());

        // Wrong magic.
        let mut bad = full.clone();
        bad[0] = b'X';
        fs::write(&path, &bad).unwrap();
        assert!(store.load(key).is_none());

        // Header claims more cells than the file holds.
        let mut bad = full;
        bad[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
        fs::write(&path, &bad).unwrap();
        assert!(store.load(key).is_none());

        drop(store);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn keys_map_to_distinct_files_and_drop_cleans_up() {
        let root = scratch("cleanup");
        let dir;
        {
            let store = SpillStore::new(&root, 3).unwrap();
            store.store(ScopeKey::Within(1), &sample_matrix()).unwrap();
            store
                .store(ScopeKey::Between(1, 2), &sample_matrix())
                .unwrap();
            assert_ne!(
                store.path(ScopeKey::Within(1)),
                store.path(ScopeKey::Between(1, 2))
            );
            dir = store.dir.clone();
            assert!(dir.is_dir());
        }
        assert!(!dir.exists(), "drop removes the private spill directory");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn colliding_directories_are_an_error_not_a_shared_store() {
        let root = scratch("collide");
        let first = SpillStore::new(&root, 4).unwrap();
        let err = SpillStore::new(&root, 4).expect_err("same pid + engine id must collide");
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        // The loser must not have destroyed the winner's directory.
        assert!(first.dir.is_dir());
        // A different engine id namespaces cleanly alongside.
        let other = SpillStore::new(&root, 5).unwrap();
        assert_ne!(first.dir, other.dir);
        drop(first);
        drop(other);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn clear_keeps_the_exclusive_claim() {
        let root = scratch("clear-claim");
        let store = SpillStore::new(&root, 6).unwrap();
        let key = ScopeKey::Within(2);
        store.store(key, &sample_matrix()).unwrap();
        store.clear();
        assert!(store.load(key).is_none(), "cleared files are misses");
        // The directory survives the clear, so later spills still land.
        store.store(key, &sample_matrix()).unwrap();
        assert!(store.load(key).is_some());
        drop(store);
        let _ = fs::remove_dir_all(root);
    }
}
