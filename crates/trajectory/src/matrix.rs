//! All-pair ground-distance storage.
//!
//! `BruteDP`, `BTM` and `GTM` "precompute all pairs of ground distances, and
//! store them in matrix `dG[·][·]` for quick access" (Section 3); `GTM*`
//! instead "computes ground distances on-the-fly" (Section 5.5, Idea i).
//! [`DenseMatrix`] and [`LazyDistances`] implement these two strategies
//! behind the common [`DistanceSource`] trait, and [`RowColMins`] holds the
//! full-range row/column minima (`Rmin`, `Cmin` of Section 4.3) that make
//! the relaxed lower bounds `O(1)`.
//!
//! ## Index convention
//!
//! `get(a, b)` returns `dG(S[a], T[b])`. For the within-trajectory problem
//! `S == T` and the matrix is symmetric; every cell a motif path can visit
//! satisfies `a < b` (the first subtrajectory precedes the second), which is
//! the [`ValidRegion::UpperTriangle`] region. For motif discovery between two
//! different trajectories every cell is valid ([`ValidRegion::Full`]).

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::point::GroundDistance;

/// Which cells of the distance matrix a motif path may visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidRegion {
    /// Every cell `(a, b)` is reachable (two-trajectory variant).
    Full,
    /// Only cells with `a < b` are reachable (single-trajectory variant,
    /// where the first subtrajectory ends before the second starts).
    UpperTriangle,
}

/// Abstract source of ground distances `dG(a, b)`.
///
/// Implemented by the precomputed [`DenseMatrix`] (fast `get`, `O(n·m)`
/// space) and by [`LazyDistances`] (recomputes per call, `O(1)` space),
/// letting every algorithm in `fremo-core` run in either space regime.
pub trait DistanceSource {
    /// Number of valid first indices (length of the first trajectory).
    fn len_a(&self) -> usize;

    /// Number of valid second indices (length of the second trajectory).
    fn len_b(&self) -> usize;

    /// Ground distance between point `a` of the first trajectory and point
    /// `b` of the second.
    fn get(&self, a: usize, b: usize) -> f64;

    /// Approximate heap footprint in bytes, for the paper's Figure 19 space
    /// accounting.
    fn bytes(&self) -> usize;

    /// Fills `out[i] = self.get(a, b_start + i)` for the whole of `out`.
    ///
    /// The default loops over [`DistanceSource::get`]; [`DenseMatrix`]
    /// overrides it with a contiguous row copy and [`LazyDistances`]
    /// with the SIMD row kernel via
    /// [`GroundDistance::distance_row`], all bit-identical to the
    /// default. The DP inner loop gathers each `dG` row through this
    /// before its scalar scan.
    #[inline]
    fn fill_row(&self, a: usize, b_start: usize, out: &mut [f64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.get(a, b_start + i);
        }
    }
}

/// Precomputed dense `len_a × len_b` ground-distance matrix (row-major,
/// indexed `a * len_b + b`).
#[derive(Debug, Clone)]
pub struct DenseMatrix {
    len_a: usize,
    len_b: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Precomputes all pair distances within a single point sequence.
    ///
    /// The matrix is symmetric; both halves are stored so that `get` stays a
    /// single multiply-add (the paper's methods index `dG` heavily in inner
    /// loops).
    ///
    /// Construction dispatches on [`Kernel::active`](crate::Kernel::active):
    /// SIMD kernels fill the upper triangle in cache-blocked tiles and
    /// mirror each tile while it is cache-resident, the scalar fallback
    /// keeps the straightforward row-then-column reference layout. Both
    /// produce **bit-for-bit identical** matrices (see `docs/KERNELS.md`),
    /// so cached matrices stay shareable across modes.
    #[must_use]
    pub fn within<P: GroundDistance>(points: &[P]) -> Self {
        let n = points.len();
        let mut data = vec![0.0; n * n];
        if crate::kernel::Kernel::active() == crate::kernel::Kernel::Scalar || n < 4 {
            // Reference layout (also the `FREMO_NO_SIMD` / forced-scalar
            // path the differential suite compares against): fill the
            // strict upper part of each row, then mirror it into the
            // column with strided writes. Simple and obviously correct,
            // but the column scatter misses a cache line per cell once
            // `n` rows outgrow the caches.
            for a in 0..n {
                let row = a * n;
                points[a].distance_row(&points[a + 1..], &mut data[row + a + 1..row + n]);
                for b in (a + 1)..n {
                    data[b * n + a] = data[row + b];
                }
            }
        } else {
            // Kernel layout: walk the upper triangle in `TILE × TILE`
            // blocks and mirror each block while its lines are still
            // cache-resident — the same tiles (and therefore the same
            // per-cell writes) the parallel builder claims off its
            // cursor, just visited by one thread. Every cell is produced
            // by the identical `distance` computation, so the result is
            // bit-for-bit the reference layout's.
            let cells = SharedCells(data.as_mut_ptr());
            let tiles_per_side = n.div_ceil(MATRIX_TILE);
            for ta in 0..tiles_per_side {
                for tb in ta..tiles_per_side {
                    fill_tile(points, n, MATRIX_TILE, ta, tb, &cells);
                }
            }
        }
        DenseMatrix {
            len_a: n,
            len_b: n,
            data,
        }
    }

    /// Precomputes all pair distances between two point sequences.
    #[must_use]
    pub fn between<P: GroundDistance>(a_pts: &[P], b_pts: &[P]) -> Self {
        let (na, nb) = (a_pts.len(), b_pts.len());
        // Pre-sized + indexed row fills: no per-cell capacity check, and
        // each row goes through the vectorized `distance_row`.
        let mut data = vec![0.0; na * nb];
        if nb > 0 {
            for (pa, row) in a_pts.iter().zip(data.chunks_mut(nb)) {
                pa.distance_row(b_pts, row);
            }
        }
        DenseMatrix {
            len_a: na,
            len_b: nb,
            data,
        }
    }

    /// [`DenseMatrix::within`] with cache-blocked parallel construction.
    ///
    /// The upper triangle is cut into `TILE × TILE` tiles; workers claim
    /// tiles off an atomic cursor, fill each tile's rows with the
    /// vectorized [`GroundDistance::distance_row`], and mirror their own
    /// cells into the transpose immediately — while the tile's cache
    /// lines are still hot — instead of the old serial whole-matrix
    /// mirror pass. Every cell (and its mirror) is written by exactly
    /// one tile owner, and every value is produced by the same
    /// `distance` computation as the serial builder, so the result is
    /// **bit-for-bit identical** to [`DenseMatrix::within`] regardless
    /// of scheduling — which is what lets the engine cache one matrix
    /// per trajectory across serial and parallel queries. `threads <= 1`
    /// runs the serial builder directly.
    #[must_use]
    pub fn within_parallel<P: GroundDistance + Sync>(points: &[P], threads: usize) -> Self {
        const TILE: usize = MATRIX_TILE;
        let n = points.len();
        if threads <= 1 || n < 4 {
            return DenseMatrix::within(points);
        }
        let tiles_per_side = n.div_ceil(TILE);
        let mut tiles = Vec::with_capacity(tiles_per_side * (tiles_per_side + 1) / 2);
        for ta in 0..tiles_per_side {
            for tb in ta..tiles_per_side {
                tiles.push((ta, tb));
            }
        }
        let mut data = vec![0.0; n * n];
        let cells = SharedCells(data.as_mut_ptr());
        let cursor = AtomicUsize::new(0);
        let workers = threads.min(tiles.len());
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    // The cursor only hands out disjoint tile indices
                    // (fetch_add is atomic); the scope join publishes
                    // relaxed: writes, nothing else is ordered by it.
                    let t = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(ta, tb)) = tiles.get(t) else {
                        break;
                    };
                    fill_tile(points, n, TILE, ta, tb, &cells);
                });
            }
        })
        .expect("matrix workers do not panic");
        DenseMatrix {
            len_a: n,
            len_b: n,
            data,
        }
    }

    /// [`DenseMatrix::between`] with row-chunked parallel construction;
    /// bit-for-bit identical to the serial builder (see
    /// [`DenseMatrix::within_parallel`]).
    #[must_use]
    pub fn between_parallel<P: GroundDistance + Sync>(
        a_pts: &[P],
        b_pts: &[P],
        threads: usize,
    ) -> Self {
        let (na, nb) = (a_pts.len(), b_pts.len());
        if threads <= 1 || na < 2 || nb == 0 {
            return DenseMatrix::between(a_pts, b_pts);
        }
        let mut data = vec![0.0; na * nb];
        let mut buckets: Vec<Vec<(usize, &mut [f64])>> =
            (0..threads.min(na)).map(|_| Vec::new()).collect();
        let workers = buckets.len();
        for (a, row) in data.chunks_mut(nb).enumerate() {
            buckets[a % workers].push((a, row));
        }
        crossbeam::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move |_| {
                    for (a, row) in bucket {
                        a_pts[a].distance_row(b_pts, row);
                    }
                });
            }
        })
        .expect("matrix workers do not panic");
        DenseMatrix {
            len_a: na,
            len_b: nb,
            data,
        }
    }

    /// Builds a matrix directly from raw row-major values (used by unit
    /// tests to reproduce the paper's Figure 5 worked example).
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != len_a * len_b`.
    #[must_use]
    pub fn from_raw(len_a: usize, len_b: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), len_a * len_b, "raw data size mismatch");
        DenseMatrix { len_a, len_b, data }
    }

    /// The raw row-major buffer.
    #[must_use]
    pub fn raw(&self) -> &[f64] {
        &self.data
    }
}

/// Tile edge of the blocked `within` builders: 64² f64 cells = 32 KiB,
/// comfortably L1/L2-resident together with the mirrored column stripe.
const MATRIX_TILE: usize = 64;

/// Raw pointer to the matrix buffer, shared across tile workers.
///
/// The tile-claiming protocol in [`DenseMatrix::within_parallel`]
/// guarantees disjoint writes: upper-triangle cell `(a, b)` (`a < b`)
/// and its mirror `(b, a)` are written only by the owner of tile
/// `(a / TILE, b / TILE)`, and the atomic cursor hands each tile to
/// exactly one worker.
#[derive(Clone, Copy)]
struct SharedCells(*mut f64);

// Workers never alias — see the ownership argument on `SharedCells`.
// The buffer outlives the crossbeam scope that borrows the pointer.
// SAFETY: disjoint writes per above; sending the pointer is sound.
unsafe impl Send for SharedCells {}
// SAFETY: as above — all access is to disjoint cells, so shared
// references across threads cannot race.
unsafe impl Sync for SharedCells {}

/// Fills tile `(ta, tb)` of the upper triangle and mirrors its cells.
fn fill_tile<P: GroundDistance>(
    points: &[P],
    n: usize,
    tile: usize,
    ta: usize,
    tb: usize,
    cells: &SharedCells,
) {
    let a_end = ((ta + 1) * tile).min(n);
    let b0 = tb * tile;
    let b_end = ((tb + 1) * tile).min(n);
    for a in (ta * tile)..a_end {
        let lo = b0.max(a + 1);
        if lo >= b_end {
            continue;
        }
        // This worker exclusively owns tile (ta, tb), hence row segment
        // [a*n + lo, a*n + b_end) with lo > a; the segment lies inside
        // the n*n allocation because a < n and lo..b_end ⊆ [0, n).
        // SAFETY: exclusive, in-bounds range per above.
        let row = unsafe { std::slice::from_raw_parts_mut(cells.0.add(a * n + lo), b_end - lo) };
        points[a].distance_row(&points[lo..b_end], row);
        for (slot, b) in row.iter().zip(lo..b_end) {
            // Mirror cell (b, a) of owned cell (a, b) belongs to the
            // same tile owner; b < n, a < n keep the write in bounds.
            // SAFETY: exclusive, in-bounds write per above.
            unsafe { *cells.0.add(b * n + a) = *slot };
        }
    }
}

impl DistanceSource for DenseMatrix {
    #[inline]
    fn len_a(&self) -> usize {
        self.len_a
    }

    #[inline]
    fn len_b(&self) -> usize {
        self.len_b
    }

    #[inline]
    fn get(&self, a: usize, b: usize) -> f64 {
        debug_assert!(a < self.len_a && b < self.len_b);
        self.data[a * self.len_b + b]
    }

    fn bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>()
    }

    #[inline]
    fn fill_row(&self, a: usize, b_start: usize, out: &mut [f64]) {
        let start = a * self.len_b + b_start;
        out.copy_from_slice(&self.data[start..start + out.len()]);
    }
}

/// On-the-fly ground distances (GTM*'s Idea i): stores only borrowed point
/// slices and recomputes `dG` per call.
#[derive(Debug, Clone, Copy)]
pub struct LazyDistances<'a, P> {
    a_pts: &'a [P],
    b_pts: &'a [P],
}

impl<'a, P: GroundDistance> LazyDistances<'a, P> {
    /// Lazy distances within a single point sequence.
    #[must_use]
    pub fn within(points: &'a [P]) -> Self {
        LazyDistances {
            a_pts: points,
            b_pts: points,
        }
    }

    /// Lazy distances between two point sequences.
    #[must_use]
    pub fn between(a_pts: &'a [P], b_pts: &'a [P]) -> Self {
        LazyDistances { a_pts, b_pts }
    }
}

impl<P: GroundDistance> DistanceSource for LazyDistances<'_, P> {
    #[inline]
    fn len_a(&self) -> usize {
        self.a_pts.len()
    }

    #[inline]
    fn len_b(&self) -> usize {
        self.b_pts.len()
    }

    #[inline]
    fn get(&self, a: usize, b: usize) -> f64 {
        self.a_pts[a].distance(&self.b_pts[b])
    }

    fn bytes(&self) -> usize {
        0
    }

    #[inline]
    fn fill_row(&self, a: usize, b_start: usize, out: &mut [f64]) {
        self.a_pts[a].distance_row(&self.b_pts[b_start..b_start + out.len()], out);
    }
}

/// Full-range row and column minima of a distance source, restricted to a
/// [`ValidRegion`].
///
/// These are the `Cmin`/`Rmin` arrays of Section 4.3: `col_min[a]` is the
/// minimum of matrix column `a` (first index fixed to `a`) over all valid
/// second indices, and `row_min[b]` the minimum of row `b` over all valid
/// first indices. Both are `O(n·m)` to build once and power the `O(1)`
/// relaxed cross/band bounds.
///
/// Entries whose row/column contain no valid cell (e.g. `row_min[0]` in the
/// upper-triangle region) are `f64::INFINITY`, which makes the derived
/// bounds degenerate to "prune nothing is impossible / prune everything is
/// allowed only if bsf is also infinite" — i.e. they stay safe.
#[derive(Debug, Clone)]
pub struct RowColMins {
    col_min: Vec<f64>,
    row_min: Vec<f64>,
}

impl RowColMins {
    /// Scans the source once and records per-column and per-row minima.
    #[must_use]
    pub fn compute<D: DistanceSource>(src: &D, region: ValidRegion) -> Self {
        let (na, nb) = (src.len_a(), src.len_b());
        let mut col_min = vec![f64::INFINITY; na];
        let mut row_min = vec![f64::INFINITY; nb];
        for (a, cmin) in col_min.iter_mut().enumerate() {
            let b_start = match region {
                ValidRegion::Full => 0,
                ValidRegion::UpperTriangle => a + 1,
            };
            for (b, rmin) in row_min.iter_mut().enumerate().skip(b_start) {
                let d = src.get(a, b);
                if d < *cmin {
                    *cmin = d;
                }
                if d < *rmin {
                    *rmin = d;
                }
            }
        }
        RowColMins { col_min, row_min }
    }

    /// Minimum of matrix column `a` (`Cmin`), or `+∞` when out of range /
    /// empty.
    #[inline]
    #[must_use]
    pub fn col_min(&self, a: usize) -> f64 {
        self.col_min.get(a).copied().unwrap_or(f64::INFINITY)
    }

    /// Minimum of matrix row `b` (`Rmin`), or `+∞` when out of range /
    /// empty.
    #[inline]
    #[must_use]
    pub fn row_min(&self, b: usize) -> f64 {
        self.row_min.get(b).copied().unwrap_or(f64::INFINITY)
    }

    /// The column-minimum array.
    #[must_use]
    pub fn col_mins(&self) -> &[f64] {
        &self.col_min
    }

    /// The row-minimum array.
    #[must_use]
    pub fn row_mins(&self) -> &[f64] {
        &self.row_min
    }

    /// Heap footprint in bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        (self.col_min.capacity() + self.row_min.capacity()) * std::mem::size_of::<f64>()
    }
}

/// Sliding-window maximum over `values` with window length `win`:
/// `out[i] = max(values[i..i+win])`, with the window truncated at the end of
/// the array (`out[i] = max(values[i..])` for the tail).
///
/// Used to turn `Rmin`/`Cmin` into the relaxed band bounds
/// `rLB_band^row(j) = max_{j'∈[j, j+ξ−1]} Rmin[j']` (Eq. 14–15) in `O(n)`
/// total instead of the paper's `O(ξ·n)`, via a monotone deque.
///
/// # Panics
///
/// Panics when `win == 0`.
#[must_use]
pub fn sliding_window_max(values: &[f64], win: usize) -> Vec<f64> {
    assert!(win > 0, "window must be positive");
    let n = values.len();
    let mut out = vec![f64::NEG_INFINITY; n];
    // Indices of candidate maxima, values decreasing front-to-back.
    let mut deque: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    // Process windows right-to-left so window [i, i+win) is complete when we
    // emit out[i].
    for i in (0..n).rev() {
        while let Some(&back) = deque.back() {
            if values[back] <= values[i] {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(i);
        while let Some(&front) = deque.front() {
            if front >= i + win {
                deque.pop_front();
            } else {
                break;
            }
        }
        out[i] = values[*deque.front().expect("deque holds current index")];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::EuclideanPoint;

    fn pts(coords: &[(f64, f64)]) -> Vec<EuclideanPoint> {
        coords
            .iter()
            .map(|&(x, y)| EuclideanPoint::new(x, y))
            .collect()
    }

    #[test]
    fn dense_within_matches_pointwise() {
        let p = pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (5.0, 5.0)]);
        let m = DenseMatrix::within(&p);
        assert_eq!(m.len_a(), 4);
        assert_eq!(m.len_b(), 4);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(m.get(a, b), p[a].distance(&p[b]));
                assert_eq!(m.get(a, b), m.get(b, a));
            }
            assert_eq!(m.get(a, a), 0.0);
        }
        assert!(m.bytes() >= 16 * 8);
    }

    #[test]
    fn dense_between_matches_pointwise() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(0.0, 1.0), (2.0, 0.0), (3.0, 4.0)]);
        let m = DenseMatrix::between(&a, &b);
        assert_eq!(m.len_a(), 2);
        assert_eq!(m.len_b(), 3);
        for (i, pa) in a.iter().enumerate() {
            for (j, pb) in b.iter().enumerate() {
                assert_eq!(m.get(i, j), pa.distance(pb));
            }
        }
    }

    #[test]
    fn lazy_agrees_with_dense() {
        let p = pts(&[(0.0, 0.0), (2.0, 1.0), (4.0, 4.0), (1.0, 7.0), (0.5, 0.5)]);
        let dense = DenseMatrix::within(&p);
        let lazy = LazyDistances::within(&p);
        for a in 0..p.len() {
            for b in 0..p.len() {
                assert_eq!(dense.get(a, b), lazy.get(a, b));
            }
        }
        assert_eq!(lazy.bytes(), 0);
        assert!(dense.bytes() > 0);
    }

    fn xorshift_pts(n: usize, mut x: u64) -> Vec<EuclideanPoint> {
        let mut pts = Vec::with_capacity(n);
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            pts.push(EuclideanPoint::new(
                (x % 1000) as f64 / 7.0,
                ((x >> 10) % 1000) as f64 / 11.0,
            ));
        }
        pts
    }

    #[test]
    fn parallel_builders_are_bitwise_identical_to_serial() {
        // 60 stays inside one 64-wide tile; 150 crosses tile boundaries
        // in both directions and exercises ragged edge tiles.
        for n in [60usize, 150] {
            let pts = xorshift_pts(n, 0xC0FFEE);
            let serial = DenseMatrix::within(&pts);
            for threads in [1, 2, 3, 4, 8, 100] {
                let par = DenseMatrix::within_parallel(&pts, threads);
                assert_eq!(par.len_a(), serial.len_a());
                for (s, p) in serial.raw().iter().zip(par.raw()) {
                    assert_eq!(s.to_bits(), p.to_bits(), "n={n} threads={threads}");
                }
            }
            let (a, b) = pts.split_at(n / 2 - 5);
            let serial = DenseMatrix::between(a, b);
            for threads in [1, 2, 4, 8] {
                let par = DenseMatrix::between_parallel(a, b, threads);
                for (s, p) in serial.raw().iter().zip(par.raw()) {
                    assert_eq!(s.to_bits(), p.to_bits(), "n={n} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn between_parallel_row_chunks_match_serial_across_shapes() {
        // Tall, wide, square and single-row shapes, so every row-chunk
        // split the bucket dealer can produce is exercised.
        for (na, nb) in [(1usize, 40usize), (40, 1), (7, 33), (33, 7), (20, 20)] {
            let a = xorshift_pts(na, 0xDEAD_BEEF);
            let b = xorshift_pts(nb, 0xFACE_FEED);
            let serial = DenseMatrix::between(&a, &b);
            assert_eq!(serial.raw().len(), na * nb);
            for (i, pa) in a.iter().enumerate() {
                for (j, pb) in b.iter().enumerate() {
                    assert_eq!(serial.get(i, j).to_bits(), pa.distance(pb).to_bits());
                }
            }
            for threads in [2, 3, 8, 64] {
                let par = DenseMatrix::between_parallel(&a, &b, threads);
                for (s, p) in serial.raw().iter().zip(par.raw()) {
                    assert_eq!(
                        s.to_bits(),
                        p.to_bits(),
                        "na={na} nb={nb} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn fill_row_overrides_match_get() {
        let pts = xorshift_pts(37, 0xABCD);
        let (a, b) = pts.split_at(17);
        let dense = DenseMatrix::between(a, b);
        let lazy = LazyDistances::between(a, b);
        for row in 0..a.len() {
            for (start, len) in [(0usize, b.len()), (3, 9), (b.len() - 1, 1), (5, 0)] {
                let mut from_dense = vec![f64::NAN; len];
                let mut from_lazy = vec![f64::NAN; len];
                dense.fill_row(row, start, &mut from_dense);
                lazy.fill_row(row, start, &mut from_lazy);
                for (i, (d, l)) in from_dense.iter().zip(&from_lazy).enumerate() {
                    let want = dense.get(row, start + i);
                    assert_eq!(d.to_bits(), want.to_bits());
                    assert_eq!(l.to_bits(), want.to_bits());
                }
            }
        }
    }

    #[test]
    fn parallel_builders_handle_degenerate_inputs() {
        let pts = pts(&[(0.0, 0.0), (1.0, 1.0)]);
        let m = DenseMatrix::within_parallel(&pts, 8);
        assert_eq!(m.get(0, 1), pts[0].distance(&pts[1]));
        let empty: Vec<EuclideanPoint> = Vec::new();
        assert_eq!(DenseMatrix::within_parallel(&empty, 4).raw().len(), 0);
        assert_eq!(
            DenseMatrix::between_parallel(&pts, &empty, 4).raw().len(),
            0
        );
    }

    #[test]
    fn from_raw_round_trips() {
        let m = DenseMatrix::from_raw(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.raw().len(), 6);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_raw_rejects_bad_size() {
        let _ = DenseMatrix::from_raw(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn row_col_mins_full_region() {
        let m = DenseMatrix::from_raw(2, 3, vec![5.0, 2.0, 9.0, 1.0, 8.0, 3.0]);
        let mins = RowColMins::compute(&m, ValidRegion::Full);
        assert_eq!(mins.col_min(0), 2.0);
        assert_eq!(mins.col_min(1), 1.0);
        assert_eq!(mins.row_min(0), 1.0);
        assert_eq!(mins.row_min(1), 2.0);
        assert_eq!(mins.row_min(2), 3.0);
        assert_eq!(mins.col_min(99), f64::INFINITY);
        assert_eq!(mins.row_min(99), f64::INFINITY);
    }

    #[test]
    fn row_col_mins_upper_triangle_excludes_diagonal_and_below() {
        // 3x3 with small values on/below the diagonal that must be ignored.
        let m = DenseMatrix::from_raw(
            3,
            3,
            vec![
                0.0, 7.0, 5.0, //
                0.1, 0.0, 6.0, //
                0.1, 0.2, 0.0,
            ],
        );
        let mins = RowColMins::compute(&m, ValidRegion::UpperTriangle);
        assert_eq!(mins.col_min(0), 5.0); // min over b in {1,2}
        assert_eq!(mins.col_min(1), 6.0); // min over b in {2}
        assert_eq!(mins.col_min(2), f64::INFINITY); // no valid cell
        assert_eq!(mins.row_min(0), f64::INFINITY); // no valid cell
        assert_eq!(mins.row_min(1), 7.0);
        assert_eq!(mins.row_min(2), 5.0);
    }

    #[test]
    fn sliding_window_max_basic() {
        let v = [2.0, 1.0, 6.0, 1.0, 1.0, 5.0];
        assert_eq!(sliding_window_max(&v, 1), v.to_vec());
        assert_eq!(
            sliding_window_max(&v, 2),
            vec![2.0, 6.0, 6.0, 1.0, 5.0, 5.0]
        );
        assert_eq!(
            sliding_window_max(&v, 3),
            vec![6.0, 6.0, 6.0, 5.0, 5.0, 5.0]
        );
        assert_eq!(
            sliding_window_max(&v, 100),
            vec![6.0, 6.0, 6.0, 5.0, 5.0, 5.0]
        );
        assert!(sliding_window_max(&[], 3).is_empty());
    }

    #[test]
    fn sliding_window_max_matches_naive_on_random_data() {
        // Deterministic pseudo-random values (xorshift), no rand dependency
        // needed in this crate's tests.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut vals = Vec::with_capacity(200);
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            vals.push((x % 1000) as f64);
        }
        for win in [1usize, 2, 3, 7, 50, 200, 500] {
            let fast = sliding_window_max(&vals, win);
            for i in 0..vals.len() {
                let end = (i + win).min(vals.len());
                let naive = vals[i..end]
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(fast[i], naive, "win={win} i={i}");
            }
        }
    }
}
