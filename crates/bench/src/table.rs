//! Minimal aligned-table printer for experiment output.

/// A simple text table with aligned columns.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders with two-space gutters, left-aligned.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(cols) {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], out: &mut String| {
            for (c, cell) in row.iter().enumerate().take(cols) {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                out.extend(std::iter::repeat_n(
                    ' ',
                    widths[c].saturating_sub(cell.len()),
                ));
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', rule));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds the way the paper's log-scale plots read (3 significant
/// figures, seconds).
#[must_use]
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.2e}", s)
    } else if s < 10.0 {
        format!("{s:.3}")
    } else {
        format!("{s:.1}")
    }
}

/// Formats bytes as MB with 1 decimal (Figure 19's unit).
#[must_use]
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a fraction as a percentage.
#[must_use]
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["n", "BTM", "GTM"]);
        t.row(vec!["500", "1.234", "0.1"]);
        t.row(vec!["10000", "99.9", "12.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("n "));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("1.234"));
        // Columns align: "BTM" and "1.234" start at the same offset.
        let header_btm = lines[0].find("BTM").unwrap();
        let row_val = lines[2].find("1.234").unwrap();
        assert_eq!(header_btm, row_val);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only"]);
        assert!(t.render().contains("only"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.0001), "1.00e-4");
        assert_eq!(fmt_secs(1.5), "1.500");
        assert_eq!(fmt_secs(123.45), "123.5");
        assert_eq!(fmt_mb(1024 * 1024), "1.0");
        assert_eq!(fmt_pct(0.925), "92.5%");
    }
}
