//! Figure 17: GTM response time vs initial group size τ.
//!
//! One line per trajectory length; x-axis is τ ∈ {8 … 128}. The paper
//! observes the response time is "not overly sensitive to τ" with 32 a
//! good default.

use fremo_core::MotifConfig;
use fremo_trajectory::gen::Dataset;

use crate::experiments::Titled;
use crate::runner::{average, run_algorithm, Algorithm, Measurement};
use crate::scale::Scale;
use crate::table::{fmt_secs, Table};
use crate::workload::trajectories;

fn measure(n: usize, xi: usize, tau: usize, reps: usize) -> Measurement {
    let cfg = MotifConfig::new(xi).with_group_size(tau);
    let ts = trajectories(Dataset::GeoLife, n, reps, 1700);
    let ms: Vec<Measurement> = ts
        .iter()
        .map(|t| run_algorithm(Algorithm::Gtm, t, &cfg).0)
        .collect();
    average(&ms)
}

/// Regenerates Figure 17.
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let xi = scale.default_xi();
    let reps = scale.repetitions();

    let mut header: Vec<String> = vec!["tau".to_string()];
    header.extend(scale.lengths().iter().map(|n| format!("n={n} (s)")));
    let mut table = Table::new(header);

    for &tau in scale.group_sizes() {
        let mut row = vec![tau.to_string()];
        for &n in scale.lengths() {
            row.push(fmt_secs(measure(n, xi, tau, reps).seconds));
        }
        table.row(row);
    }

    vec![(
        format!("Figure 17: GTM response time vs group size tau (xi={xi})"),
        table,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_tau_returns_the_same_motif() {
        let base = measure(140, 10, 8, 1).distance.expect("motif");
        for tau in [4, 16, 32] {
            let d = measure(140, 10, tau, 1).distance.expect("motif");
            assert!((d - base).abs() < 1e-9, "tau={tau}: {d} vs {base}");
        }
    }
}
