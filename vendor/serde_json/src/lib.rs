//! Minimal, API-compatible subset of `serde_json`, vendored so the
//! workspace builds offline: a [`Value`] tree, the [`json!`] macro (objects,
//! arrays, `null`, and arbitrary expressions convertible via [`From`]), and
//! [`to_string`] / [`to_string_pretty`] over `Value`. Object key order is
//! preserved (insertion order), matching what the CLI prints.
//!
//! Swap the path dependency for crates.io `serde_json = "1"` once network
//! access is available; the `json!` call sites need no changes.

#![warn(missing_docs)]

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (stored as `f64`; integers print without `.0`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// The `null` value, returned by out-of-range [`std::ops::Index`] lookups
/// (matching real `serde_json` semantics).
const NULL: Value = Value::Null;

impl Value {
    /// Object field lookup (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Whether this is `Value::Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is a boolean.
    #[must_use]
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// Whether this is a number.
    #[must_use]
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Whether this is a string.
    #[must_use]
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether this is an array.
    #[must_use]
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is an object.
    #[must_use]
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// The boolean, when this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, when this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element vector, when this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `value["key"]`, yielding `Null` for non-objects and missing keys
    /// (real `serde_json` behavior).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// `value[i]`, yielding `Null` out of range or on non-arrays.
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

macro_rules! value_from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(v as f64)
            }
        }
    )*};
}

value_from_number!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string(); // serde_json serializes non-finite as null
    }
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_value(v: &Value, out: &mut String, pretty: bool, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                }
                write_value(item, out, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                }
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(val, out, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out, false, 0);
        f.write_str(&out)
    }
}

/// Serialization error (the shim's writer is infallible; kept for API parity).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a [`Value`] to a compact JSON string.
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors the real API.
pub fn to_string(value: &Value) -> Result<String> {
    let mut out = String::new();
    write_value(value, &mut out, false, 0);
    Ok(out)
}

/// Serializes a [`Value`] to a pretty-printed (2-space indented) string.
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors the real API.
pub fn to_string_pretty(value: &Value) -> Result<String> {
    let mut out = String::new();
    write_value(value, &mut out, true, 0);
    Ok(out)
}

/// Builds a [`Value`] from JSON-like syntax: objects, arrays, `null`, and
/// Rust expressions convertible into `Value` via [`From`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($body:tt)+ }) => {{
        #[allow(clippy::vec_init_then_push)]
        let entries = {
            let mut entries: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_object_entries!(entries ; $($body)+);
            entries
        };
        $crate::Value::Object(entries)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_entries {
    ($entries:ident ;) => {};
    ($entries:ident ; $key:literal : $($rest:tt)*) => {
        $crate::json_object_value!($entries ; $key ; [] $($rest)*)
    };
}

/// Implementation detail of [`json!`]: accumulates a value's tokens until a
/// top-level comma (or the end of input), then recurses into [`json!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_value {
    ($entries:ident ; $key:literal ; [$($val:tt)*] , $($rest:tt)*) => {
        $entries.push((::std::string::String::from($key), $crate::json!($($val)*)));
        $crate::json_object_entries!($entries ; $($rest)*)
    };
    ($entries:ident ; $key:literal ; [$($val:tt)*]) => {
        $entries.push((::std::string::String::from($key), $crate::json!($($val)*)));
    };
    ($entries:ident ; $key:literal ; [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_object_value!($entries ; $key ; [$($val)* $next] $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::Value;

    #[test]
    fn object_macro_preserves_order_and_nests() {
        let inner = 0.5_f64;
        let v = json!({
            "motif": Some(json!({ "first": { "start": 3, "end": 9 }, "dfd": inner })),
            "none": None::<Value>,
            "count": 12usize,
        });
        let s = super::to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"motif":{"first":{"start":3,"end":9},"dfd":0.5},"none":null,"count":12}"#
        );
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({ "a": 1, "b": [1, 2] });
        let s = super::to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({ "k": "a\"b\\c\nd" });
        assert_eq!(super::to_string(&v).unwrap(), r#"{"k":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(super::number_to_string(3.0), "3");
        assert_eq!(super::number_to_string(3.25), "3.25");
        assert_eq!(super::number_to_string(f64::NAN), "null");
    }
}
