//! Extension experiment: ε-approximate search — speedup vs certified
//! error (the paper's future-work direction, quantified).
//!
//! For each ε we report the measured response time, the actual error
//! `found/optimal − 1`, and the guarantee `ε`. The actual error is
//! typically far below the guarantee (the bounds are loose only where the
//! data is ambiguous).

use fremo_core::{ApproxGtm, MotifConfig, MotifDiscovery};
use fremo_trajectory::gen::Dataset;

use crate::experiments::Titled;
use crate::runner::{average, run_algorithm, Algorithm, Measurement};
use crate::scale::Scale;
use crate::table::{fmt_secs, Table};
use crate::workload::trajectories;

const EPSILONS: [f64; 4] = [0.0, 0.1, 0.5, 1.0];

/// Regenerates the approximate-search table.
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let n = scale.default_n();
    let xi = scale.default_xi();
    let reps = scale.repetitions();
    let ts = trajectories(Dataset::GeoLife, n, reps, 3000);

    // Exact baseline per trajectory.
    let cfg = MotifConfig::new(xi);
    let exact: Vec<Measurement> = ts
        .iter()
        .map(|t| run_algorithm(Algorithm::Gtm, t, &cfg).0)
        .collect();
    let exact_avg = average(&exact);

    let mut table = Table::new(vec![
        "epsilon",
        "time (s)",
        "speedup",
        "actual error",
        "guarantee",
    ]);
    for eps in EPSILONS {
        let searcher = ApproxGtm::new(eps);
        let mut times = Vec::new();
        let mut worst_err = 0.0_f64;
        for (t, base) in ts.iter().zip(&exact) {
            let (motif, stats) = searcher.discover_with_stats(t, &cfg);
            times.push(stats.total_seconds);
            let found = motif.expect("motif").distance;
            let optimal = base.distance.expect("motif");
            if optimal > 0.0 {
                worst_err = worst_err.max(found / optimal - 1.0);
            }
            assert!(found <= (1.0 + eps) * optimal + 1e-9, "guarantee violated");
        }
        let mean_time = times.iter().sum::<f64>() / times.len() as f64;
        table.row(vec![
            format!("{eps:.2}"),
            fmt_secs(mean_time),
            format!("{:.2}x", exact_avg.seconds / mean_time.max(1e-12)),
            format!("{:.2}%", worst_err * 100.0),
            format!("{:.0}%", eps * 100.0),
        ]);
    }

    vec![(
        format!("Extension: (1+eps)-approximate GTM — time vs certified error (n={n}, xi={xi})"),
        table,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_smoke_scale() {
        let out = run(Scale::Smoke);
        assert_eq!(out.len(), 1);
        assert!(out[0].1.render().contains("0.50"));
    }
}
