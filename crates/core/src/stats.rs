//! Search statistics: pruning attribution, work and space accounting.
//!
//! Backs the paper's evaluation: Figure 13/14's pruning ratios, Figure 15's
//! per-bound breakdown, and Figure 19's space consumption all come straight
//! out of [`SearchStats`].

use crate::config::BoundKind;

/// Counters collected during one motif search.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Total candidate subsets `CS_{i,j}` in the search space.
    pub subsets_total: u64,
    /// Candidate subsets pruned before any DP, attributed to the first
    /// bound that disqualified them (evaluation order: cell → cross → band,
    /// matching Figure 15).
    pub subsets_pruned_cell: u64,
    /// See [`SearchStats::subsets_pruned_cell`].
    pub subsets_pruned_cross: u64,
    /// See [`SearchStats::subsets_pruned_cell`].
    pub subsets_pruned_band: u64,
    /// Candidate subsets never reached because the best-first scan stopped
    /// (sorted list, `bsf ≤ LB` for everything after the stop point). These
    /// count as pruned by whichever bound produced their `LB`.
    pub subsets_skipped_sorted: u64,
    /// Candidate subsets left unexamined because a
    /// [`crate::search::SearchBudget`] truncated the scan — not pruned by
    /// any bound (0 for unbudgeted searches).
    pub subsets_skipped_budget: u64,
    /// Candidate subsets that required running the shared-DP (exact DFD).
    pub subsets_expanded: u64,

    /// Total candidate *pairs* `(i, ie, j, je)` (the paper's Figure 15
    /// denominators are pairs, not subsets).
    pub pairs_total: u128,
    /// Candidate pairs pruned by each bound family.
    pub pairs_pruned_cell: u128,
    /// See [`SearchStats::pairs_pruned_cell`].
    pub pairs_pruned_cross: u128,
    /// See [`SearchStats::pairs_pruned_cell`].
    pub pairs_pruned_band: u128,
    /// Candidate pairs pruned by group-level pattern bounds (GTM).
    pub pairs_pruned_group_pattern: u128,
    /// Candidate pairs pruned by group-level DFD bounds (GTM).
    pub pairs_pruned_group_dfd: u128,
    /// Candidate pairs in budget-skipped subsets (see
    /// [`SearchStats::subsets_skipped_budget`]).
    pub pairs_skipped_budget: u128,
    /// Candidate pairs whose exact DFD was evaluated (the "DFD" bar segment
    /// of Figure 15).
    pub pairs_exact: u128,

    /// Subset expansions whose sorted-list bound is prunable under the
    /// *final* best-so-far — speculative work an oracle scan would have
    /// skipped. Serial scans report 0 (they stop at the first entry that
    /// is prunable when reached); parallel workers expanding against
    /// stale snapshots report their overshoot here. Wasted work affects
    /// speed only, never the result.
    pub subsets_expanded_wasted: u64,
    /// Worker threads used by the candidate scan: `>= 2` means the
    /// parallel execution layer ran with that many workers, `1` a
    /// single-worker scan (serial or a 1-worker parallel run), `0` a
    /// search with no recorded scan (e.g. the zeroed stats of join or
    /// cluster outcomes).
    pub threads_used: usize,

    /// DP cells expanded across all candidate subsets.
    pub dp_cells: u64,
    /// Cells skipped by the end-cross clamp (Algorithm 2 lines 12–13).
    pub cells_skipped_end_cross: u64,
    /// Rows abandoned because the whole DP frontier already exceeded `bsf`.
    pub rows_abandoned: u64,
    /// How many times `bsf` improved.
    pub bsf_updates: u64,
    /// How many times a group-level upper bound tightened `bsf` (GTM,
    /// Algorithm 3 lines 12–13).
    pub bsf_tightened_by_group_ub: u64,

    /// Group pairs considered across all grouping levels (GTM/GTM*).
    pub group_pairs_total: u64,
    /// Group pairs pruned by pattern bounds (Step 3 of Figure 9).
    pub group_pairs_pruned_pattern: u64,
    /// Group pairs pruned by `GLB_DFD` (Step 4 of Figure 9).
    pub group_pairs_pruned_dfd: u64,
    /// Group pairs surviving to the next level.
    pub group_pairs_survived: u64,

    /// Bytes held by the precomputed ground-distance matrix (0 for GTM*).
    pub bytes_distance_matrix: usize,
    /// Bytes held by bound tables (`Rmin`/`Cmin`, band windows, tight
    /// matrices).
    pub bytes_bounds: usize,
    /// Bytes held by the sorted candidate / group-pair lists.
    pub bytes_lists: usize,
    /// Bytes held by DP buffers.
    pub bytes_dp: usize,
    /// Bytes held by group min/max matrices across levels (peak).
    pub bytes_groups: usize,

    /// Wall-clock seconds spent in precomputation (distances + bounds),
    /// included in total response time as in the paper (Section 6.1).
    pub precompute_seconds: f64,
    /// Total wall-clock seconds of the search.
    pub total_seconds: f64,

    /// Which distance-kernel variant the engine dispatched this query
    /// under: `"avx2"`, `"sse2"`, `"neon"` or `"scalar"` (see
    /// `fremo_trajectory::kernel`). Empty for stats produced outside
    /// the engine (direct algorithm calls leave the default).
    pub kernel: &'static str,
}

impl SearchStats {
    /// Total peak heap bytes across the tracked structures (Figure 19's
    /// "space consumption").
    #[must_use]
    pub fn peak_bytes(&self) -> usize {
        self.bytes_distance_matrix
            + self.bytes_bounds
            + self.bytes_lists
            + self.bytes_dp
            + self.bytes_groups
    }

    /// Sum of every candidate pair already attributed — pruned by any
    /// bound family, budget-skipped, or exactly evaluated. A complete
    /// search satisfies `pairs_accounted() == pairs_total`; a truncated
    /// one settles the remainder into `pairs_skipped_budget`.
    #[must_use]
    pub fn pairs_accounted(&self) -> u128 {
        self.pairs_pruned_cell
            + self.pairs_pruned_cross
            + self.pairs_pruned_band
            + self.pairs_pruned_group_pattern
            + self.pairs_pruned_group_dfd
            + self.pairs_skipped_budget
            + self.pairs_exact
    }

    /// Fraction of candidate pairs pruned without exact DFD computation,
    /// in `[0, 1]` (Figure 13/14's "% of candidates pruned"). Pairs a
    /// budget left unexamined are not counted as pruned; clamped because
    /// multi-round searches (top-k) can evaluate more pairs than one
    /// round's search space holds.
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        if self.pairs_total == 0 {
            return 0.0;
        }
        (1.0 - ((self.pairs_exact + self.pairs_skipped_budget) as f64 / self.pairs_total as f64))
            .clamp(0.0, 1.0)
    }

    /// Fraction of candidate pairs attributed to one bound family
    /// (Figure 15's stacked bars).
    #[must_use]
    pub fn pruned_fraction_by(&self, kind: BoundKind) -> f64 {
        if self.pairs_total == 0 {
            return 0.0;
        }
        let num = match kind {
            BoundKind::Cell => self.pairs_pruned_cell,
            BoundKind::Cross => self.pairs_pruned_cross,
            BoundKind::Band => self.pairs_pruned_band,
            BoundKind::GroupPattern => self.pairs_pruned_group_pattern,
            BoundKind::GroupDfd => self.pairs_pruned_group_dfd,
            BoundKind::Exact => self.pairs_exact,
        };
        num as f64 / self.pairs_total as f64
    }

    /// Records a pruned candidate subset holding `pairs` candidate pairs,
    /// attributed to `kind`.
    pub(crate) fn record_subset_pruned(&mut self, kind: BoundKind, pairs: u128) {
        match kind {
            BoundKind::Cell => {
                self.subsets_pruned_cell += 1;
                self.pairs_pruned_cell += pairs;
            }
            BoundKind::Cross => {
                self.subsets_pruned_cross += 1;
                self.pairs_pruned_cross += pairs;
            }
            BoundKind::Band => {
                self.subsets_pruned_band += 1;
                self.pairs_pruned_band += pairs;
            }
            BoundKind::GroupPattern => self.pairs_pruned_group_pattern += pairs,
            BoundKind::GroupDfd => self.pairs_pruned_group_dfd += pairs,
            BoundKind::Exact => self.pairs_exact += pairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bytes_sums_components() {
        let s = SearchStats {
            bytes_distance_matrix: 100,
            bytes_bounds: 10,
            bytes_lists: 5,
            bytes_dp: 1,
            bytes_groups: 2,
            ..SearchStats::default()
        };
        assert_eq!(s.peak_bytes(), 118);
    }

    #[test]
    fn pruned_fractions() {
        let mut s = SearchStats {
            pairs_total: 100,
            pairs_exact: 8,
            ..SearchStats::default()
        };
        s.record_subset_pruned(BoundKind::Cell, 70);
        s.record_subset_pruned(BoundKind::Cross, 12);
        s.record_subset_pruned(BoundKind::Band, 10);
        assert!((s.pruned_fraction() - 0.92).abs() < 1e-12);
        assert!((s.pruned_fraction_by(BoundKind::Cell) - 0.70).abs() < 1e-12);
        assert!((s.pruned_fraction_by(BoundKind::Cross) - 0.12).abs() < 1e-12);
        assert!((s.pruned_fraction_by(BoundKind::Band) - 0.10).abs() < 1e-12);
        assert!((s.pruned_fraction_by(BoundKind::Exact) - 0.08).abs() < 1e-12);
        assert_eq!(s.subsets_pruned_cell, 1);
    }

    #[test]
    fn empty_stats_are_harmless() {
        let s = SearchStats::default();
        assert_eq!(s.pruned_fraction(), 0.0);
        assert_eq!(s.pruned_fraction_by(BoundKind::Cell), 0.0);
        assert_eq!(s.peak_bytes(), 0);
    }
}
