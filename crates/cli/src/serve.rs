//! `fremo serve` — a thread-per-connection query server over one shared
//! [`Engine`].
//!
//! The server loads (or generates) a trajectory corpus once, then serves
//! concurrent clients over a line protocol: each request is one JSON
//! object on one line, each response is one JSON object on one line, in
//! request order per connection. Results are computed through per-client
//! [`fremo_core::engine::Session`] handles on the shared engine, so
//! concurrent clients share cached distance matrices and bound tables —
//! and, by the engine's core guarantee, see answers bit-for-bit identical
//! to a serial run on a private engine. See `docs/SERVING.md` for the
//! full protocol schema and the concurrency model.
//!
//! ## Admission control
//!
//! Three independent gates bound what a busy server takes on:
//!
//! * `--max-clients <n>` caps concurrent connections; a client over the
//!   cap receives one `{"ok":false,"error":"server at capacity"}` line
//!   and is disconnected (fail fast beats queueing connects).
//! * `--tenant-queries <n>` caps *in-flight queries per tenant* (the
//!   optional `"tenant"` request field; connections that send none share
//!   the `""` tenant). Excess queries block in admission until a slot
//!   frees — order within one connection is preserved regardless.
//! * `--tenant-threads <n>` clamps the worker threads any single query
//!   may use, after the usual [`resolve_threads`] resolution of the
//!   request's `"threads"` field against `FREMO_THREADS`. Clamping never
//!   changes answers (parallel results are bit-identical to serial).
//!
//! `--budget-seconds` / `--budget-subsets` set server-side ceilings on
//! every query's [`QueryBudget`]; a client may request a *smaller* budget
//! but cannot exceed the server's.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use fremo_core::engine::{
    AlgorithmChoice, Engine, ExecutionMode, Query, QueryBudget, QueryBuilder, TrajId,
};
use fremo_core::pool::resolve_threads;
use fremo_trajectory::gen::Dataset;
use fremo_trajectory::GeoPoint;
use serde_json::Value;

use crate::args::Parsed;
use crate::commands::{load, outcome_to_json, session_engine};

/// How long a connection handler waits on a quiet socket before
/// re-checking the shutdown flag. Bounds the drain time of `shutdown`
/// without imposing any request timeout on clients.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Server-side constraints applied to every translated query (see
/// [`build_query`]). Split from [`ServeConfig`] so the CLI `batch` verb
/// can reuse the request→[`Query`] translation with no server attached
/// ([`QueryLimits::none`]).
pub(crate) struct QueryLimits {
    /// Per-query worker-thread ceiling (0 = unconstrained).
    pub(crate) tenant_threads: usize,
    /// Wall-clock budget ceiling in seconds.
    pub(crate) budget_seconds: Option<f64>,
    /// Candidate-subset budget ceiling.
    pub(crate) budget_subsets: Option<u64>,
}

impl QueryLimits {
    /// No thread clamp, no budget ceilings.
    pub(crate) fn none() -> Self {
        QueryLimits {
            tenant_threads: 0,
            budget_seconds: None,
            budget_subsets: None,
        }
    }
}

/// Server configuration resolved from the command line.
struct ServeConfig {
    addr: String,
    max_clients: usize,
    tenant_queries: usize,
    tenant_bytes: Option<usize>,
    limits: QueryLimits,
}

impl ServeConfig {
    fn from_args(args: &Parsed) -> Result<Self, String> {
        let max_clients: usize = args.parsed_or("max-clients", 32)?;
        if max_clients == 0 {
            return Err("--max-clients must be at least 1".into());
        }
        let tenant_queries: usize = args.parsed_or("tenant-queries", 4)?;
        if tenant_queries == 0 {
            return Err("--tenant-queries must be at least 1".into());
        }
        let tenant_bytes = match args.optional("tenant-bytes") {
            None => None,
            Some(raw) => {
                let bytes = crate::commands::parse_bytes(raw)
                    .map_err(|e| format!("--tenant-bytes: {e}"))?;
                if bytes == 0 {
                    return Err("--tenant-bytes must be at least 1".into());
                }
                Some(bytes)
            }
        };
        let budget_seconds = match args.optional("budget-seconds") {
            None => None,
            Some(raw) => {
                let secs: f64 = raw
                    .parse()
                    .map_err(|e| format!("invalid value for --budget-seconds: {e}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("--budget-seconds must be finite and ≥ 0".into());
                }
                Some(secs)
            }
        };
        Ok(ServeConfig {
            addr: args.optional("addr").unwrap_or("127.0.0.1:0").to_string(),
            max_clients,
            tenant_queries,
            tenant_bytes,
            limits: QueryLimits {
                tenant_threads: args.parsed_or("tenant-threads", 0)?,
                budget_seconds,
                budget_subsets: match args.optional("budget-subsets") {
                    None => None,
                    Some(raw) => Some(
                        raw.parse()
                            .map_err(|e| format!("invalid value for --budget-subsets: {e}"))?,
                    ),
                },
            },
        })
    }
}

/// Per-tenant in-flight query gate: [`TenantGate::admit`] blocks while
/// the tenant is at its cap, and the returned permit frees the slot on
/// drop (including panic unwinds).
struct TenantGate {
    cap: usize,
    inflight: Mutex<HashMap<String, usize>>,
    freed: Condvar,
}

impl TenantGate {
    fn new(cap: usize) -> Self {
        TenantGate {
            cap,
            inflight: Mutex::new(HashMap::new()),
            freed: Condvar::new(),
        }
    }

    #[cfg(test)]
    fn admit<'g>(&'g self, tenant: &str) -> TenantPermit<'g> {
        self.admit_many(tenant, 1)
    }

    /// Admits `count` queries from one tenant **atomically**: the caller
    /// either takes all the slots in one step or holds none while it
    /// waits. Batch admission must go through this — two connections
    /// each holding part of a tenant's cap while waiting for the rest
    /// would deadlock. `count` must not exceed the cap (the batch
    /// chunker guarantees it).
    fn admit_many<'g>(&'g self, tenant: &str, count: usize) -> TenantPermit<'g> {
        assert!(count <= self.cap, "chunk exceeds the tenant query cap");
        let mut inflight = self.inflight.lock().expect("tenant gate poisoned");
        loop {
            let current = inflight.entry(tenant.to_string()).or_insert(0);
            if *current + count <= self.cap {
                *current += count;
                return TenantPermit {
                    gate: self,
                    tenant: tenant.to_string(),
                    count,
                };
            }
            inflight = self.freed.wait(inflight).expect("tenant gate poisoned");
        }
    }
}

struct TenantPermit<'g> {
    gate: &'g TenantGate,
    tenant: String,
    count: usize,
}

impl Drop for TenantPermit<'_> {
    fn drop(&mut self) {
        let mut inflight = self.gate.inflight.lock().expect("tenant gate poisoned");
        if let Some(count) = inflight.get_mut(&self.tenant) {
            *count = count.saturating_sub(self.count);
            if *count == 0 {
                inflight.remove(&self.tenant);
            }
        }
        drop(inflight);
        self.gate.freed.notify_all();
    }
}

/// Per-tenant in-flight **byte** budget (`--tenant-bytes`): the resident
/// bytes a tenant's running queries are estimated to pin may not exceed
/// the cap. A single query estimated over the whole budget is rejected
/// outright (with the estimate in the message); anything smaller queues
/// in admission until the tenant's in-flight bytes leave room. With no
/// cap configured every admission is a free no-op.
struct TenantByteGate {
    cap: Option<usize>,
    inflight: Mutex<HashMap<String, usize>>,
    freed: Condvar,
}

impl TenantByteGate {
    fn new(cap: Option<usize>) -> Self {
        TenantByteGate {
            cap,
            inflight: Mutex::new(HashMap::new()),
            freed: Condvar::new(),
        }
    }

    /// Reserves `bytes` for `tenant`, atomically (all or nothing, like
    /// [`TenantGate::admit_many`]).
    ///
    /// # Errors
    ///
    /// When `bytes` alone exceeds the whole budget — no amount of
    /// queueing would ever admit it.
    fn admit<'g>(&'g self, tenant: &str, bytes: usize) -> Result<BytePermit<'g>, String> {
        let Some(cap) = self.cap else {
            return Ok(BytePermit {
                gate: self,
                tenant: String::new(),
                bytes: 0,
            });
        };
        if bytes > cap {
            return Err(format!(
                "rejected: query needs ~{bytes} resident bytes, over the per-tenant \
                 budget of {cap} (--tenant-bytes)"
            ));
        }
        let mut inflight = self.inflight.lock().expect("byte gate poisoned");
        loop {
            let current = inflight.entry(tenant.to_string()).or_insert(0);
            if *current + bytes <= cap {
                *current += bytes;
                return Ok(BytePermit {
                    gate: self,
                    tenant: tenant.to_string(),
                    bytes,
                });
            }
            inflight = self.freed.wait(inflight).expect("byte gate poisoned");
        }
    }
}

struct BytePermit<'g> {
    gate: &'g TenantByteGate,
    tenant: String,
    bytes: usize,
}

impl Drop for BytePermit<'_> {
    fn drop(&mut self) {
        if self.bytes == 0 {
            return;
        }
        let mut inflight = self.gate.inflight.lock().expect("byte gate poisoned");
        if let Some(bytes) = inflight.get_mut(&self.tenant) {
            *bytes = bytes.saturating_sub(self.bytes);
            if *bytes == 0 {
                inflight.remove(&self.tenant);
            }
        }
        drop(inflight);
        self.gate.freed.notify_all();
    }
}

/// Both tenant gates, bundled so connection handlers thread one
/// reference around.
struct Gates {
    queries: TenantGate,
    bytes: TenantByteGate,
}

/// Estimated resident bytes a query will pin while it runs: its dense
/// distance matrix (`n·m` f64 cells), the dominant cache footprint.
/// GTM*-resolved motifs skip the dense build, and join/cluster/measures
/// bypass the cache entirely — those estimate 0. Bound tables are O(n)
/// and ignored.
fn resident_estimate(engine: &Engine<GeoPoint>, query: &Query) -> usize {
    use fremo_core::engine::{MotifScope, QueryKind, ResolvedAlgorithm};
    let len = |id: TrajId| engine.trajectory(id).map(|t| t.len()).unwrap_or(0);
    let (n, m) = match &query.kind {
        QueryKind::Motif {
            scope: MotifScope::Within(id),
        } => (len(*id), None),
        QueryKind::Motif {
            scope: MotifScope::Between(a, b),
        } => (len(*a), Some(len(*b))),
        QueryKind::TopK { id, .. } => (len(*id), None),
        _ => return 0,
    };
    let longest = n.max(m.unwrap_or(0));
    if matches!(query.kind, QueryKind::Motif { .. })
        && matches!(
            query.algorithm.resolve(longest, query.min_length),
            ResolvedAlgorithm::GtmStar
        )
    {
        return 0;
    }
    n.saturating_mul(m.unwrap_or(n))
        .saturating_mul(std::mem::size_of::<f64>())
}

/// Builds the corpus: every `--corpus` CSV/PLT path (comma-separated),
/// plus `--count` generated trajectories when `--dataset` is given.
pub(crate) fn build_corpus(
    args: &Parsed,
    engine: &Engine<GeoPoint>,
) -> Result<Vec<TrajId>, String> {
    let mut ids = Vec::new();
    if let Some(list) = args.optional("corpus") {
        for path in list.split(',').filter(|p| !p.trim().is_empty()) {
            ids.push(engine.register(load(path.trim())?));
        }
    }
    if let Some(raw) = args.optional("dataset") {
        let dataset: Dataset = raw.parse()?;
        let n: usize = args.required_parsed("n")?;
        let count: usize = args.parsed_or("count", 1)?;
        let seed: u64 = args.parsed_or("seed", 1)?;
        for i in 0..count {
            ids.push(engine.register(dataset.generate(n, seed.wrapping_add(i as u64))));
        }
    }
    if ids.is_empty() {
        return Err(
            "empty corpus: pass --corpus <csv[,csv...]> and/or --dataset <name> --n <len> \
             [--count <k>] [--seed <u64>]"
                .into(),
        );
    }
    Ok(ids)
}

/// `fremo serve [--addr 127.0.0.1:0] [--corpus <csv[,csv...]>]
/// [--dataset <name> --n <len> --count <k> --seed <u64>]
/// [--max-clients 32] [--tenant-queries 4] [--tenant-bytes <bytes>]
/// [--tenant-threads <n>] [--budget-seconds <s>] [--budget-subsets <n>]
/// [--cache-limit <bytes>] [--spill-dir <dir>]`
///
/// Prints `listening <addr>` on stdout once the socket is bound (with
/// `--addr` port 0 this is how callers learn the ephemeral port), then
/// serves until a client sends `{"op":"shutdown"}`. Shutdown drains:
/// the listener stops accepting and every open connection finishes its
/// in-flight request before the process exits.
pub fn serve(args: &Parsed) -> Result<(), String> {
    let config = ServeConfig::from_args(args)?;
    let engine = session_engine(args)?;
    let corpus = build_corpus(args, &engine)?;

    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve local addr: {e}"))?;
    println!("listening {local}");
    // The line above is the readiness signal clients wait for; make sure
    // it is not sitting in a stdio buffer.
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    eprintln!(
        "serving {} trajectories; max {} clients, {} queries/tenant",
        corpus.len(),
        config.max_clients,
        config.tenant_queries
    );

    let shutdown = AtomicBool::new(false);
    let active = AtomicUsize::new(0);
    let gates = Gates {
        queries: TenantGate::new(config.tenant_queries),
        bytes: TenantByteGate::new(config.tenant_bytes),
    };

    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            // The shutdown response the client already received is the
            // only ordering that matters; it was flushed pre-store.
            // relaxed: standalone flag, no data rides on it.
            if shutdown.load(Ordering::Relaxed) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Best-effort admission count: an off-by-one race briefly
            // over-admits, it cannot corrupt anything.
            // relaxed: gate-only counter (increment and undo alike).
            if active.fetch_add(1, Ordering::Relaxed) >= config.max_clients {
                active.fetch_sub(1, Ordering::Relaxed);
                reject_over_capacity(stream);
                continue;
            }
            let engine = &engine;
            let corpus = &corpus;
            let config = &config;
            let shutdown = &shutdown;
            let active = &active;
            let gates = &gates;
            scope.spawn(move || {
                let _ = handle_connection(stream, engine, corpus, config, gates, shutdown, local);
                // relaxed: see the admission count above.
                active.fetch_sub(1, Ordering::Relaxed);
            });
        }
    });
    Ok(())
}

/// Tells an over-capacity client why it is being disconnected.
fn reject_over_capacity(stream: TcpStream) {
    let mut out = BufWriter::new(stream);
    let _ = writeln!(
        out,
        r#"{{"ok":false,"error":"server at capacity, retry later"}}"#
    );
}

/// One connection: read a request line, opportunistically drain any
/// further complete lines the client has already pipelined (only bytes
/// in the read buffer — a lone request never waits for company), answer
/// the whole run, and repeat until EOF or shutdown. Consecutive query
/// requests in a drained run execute as one [`Engine::execute_batch`]
/// call, sharing builds and fusing scans; responses are written in
/// request order with each request's `seq` echoed, exactly as in
/// one-at-a-time service.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine<GeoPoint>,
    corpus: &[TrajId],
    config: &ServeConfig,
    gates: &Gates,
    shutdown: &AtomicBool,
    local: std::net::SocketAddr,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IDLE_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut session = engine.session();
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // relaxed: standalone flag, polled; see `serve`.
                if shutdown.load(Ordering::Relaxed) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut lines = vec![std::mem::take(&mut line)];
        // Drain-to-batch: while a complete line is already buffered,
        // take it. `read_line` stops at the buffered newline without
        // touching the socket, so this never blocks.
        while reader.buffer().contains(&b'\n') {
            let mut next = String::new();
            reader.read_line(&mut next)?;
            if !next.trim().is_empty() {
                lines.push(next);
            }
        }
        let responses = respond_all(&lines, &mut session, corpus, config, gates, shutdown);
        for response in &responses {
            writeln!(writer, "{response}")?;
        }
        writer.flush()?;
        // relaxed: standalone flag; the responses just flushed are the
        // only thing the client must see before we go away.
        if shutdown.load(Ordering::Relaxed) {
            // Wake the accept loop so `serve` can observe the flag even
            // with no further client connecting.
            let _ = TcpStream::connect(local);
            return Ok(());
        }
    }
}

/// A drained request line after parsing/translation: either a response
/// that is already final (admin ops, rejects, protocol errors) or a
/// query awaiting execution.
enum LineItem {
    Done(String),
    Query {
        seq: Option<u64>,
        tenant: String,
        label: &'static str,
        query: Query,
        bytes: usize,
    },
}

/// Answers a run of request lines, in order. Single lines take the
/// direct path; drained runs batch their consecutive query requests
/// through [`Engine::execute_batch`]. Admin ops (`stats`, `shutdown`)
/// cut a batch run at their position — and after a `shutdown` the
/// remaining lines are not executed, matching the one-at-a-time loop,
/// which disconnects right after acknowledging the shutdown.
fn respond_all(
    lines: &[String],
    session: &mut fremo_core::engine::Session<'_, GeoPoint>,
    corpus: &[TrajId],
    config: &ServeConfig,
    gates: &Gates,
    shutdown: &AtomicBool,
) -> Vec<String> {
    let mut responses = Vec::with_capacity(lines.len());
    let mut run: Vec<LineItem> = Vec::new();
    for line in lines {
        // relaxed: standalone stop flag; the shutdown response the
        // peer already received is the only ordering that matters.
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        match classify(line, session.engine(), corpus, config) {
            item @ LineItem::Query { .. } => run.push(item),
            LineItem::Done(response) => {
                // An already-final line (admin op, reject, bad JSON)
                // keeps its position: flush the query run before it.
                flush_run(&mut run, &mut responses, session, gates);
                // Admin ops act only now, so a shutdown cannot overtake
                // queries that arrived before it.
                if let Some(admin) = admin_response(line, session, corpus, shutdown) {
                    responses.push(admin);
                } else {
                    responses.push(response);
                }
            }
        }
    }
    flush_run(&mut run, &mut responses, session, gates);
    responses
}

/// Parses one line into a [`LineItem`] without executing anything.
fn classify(
    line: &str,
    engine: &Engine<GeoPoint>,
    corpus: &[TrajId],
    config: &ServeConfig,
) -> LineItem {
    let request: Value = match serde_json::from_str(line.trim()) {
        Ok(v) => v,
        Err(e) => return LineItem::Done(error_line(None, &format!("bad JSON: {e}"))),
    };
    let seq = request.get("seq").and_then(Value::as_u64);
    let op = match request.get("op").and_then(Value::as_str) {
        Some(op) => op,
        None => return LineItem::Done(error_line(seq, "missing string field \"op\"")),
    };
    if matches!(op, "shutdown" | "stats") {
        // Placeholder response; `respond_all` substitutes the live
        // admin answer at the item's position.
        return LineItem::Done(String::new());
    }
    match build_query(op, &request, corpus, &config.limits) {
        Ok((label, query)) => LineItem::Query {
            seq,
            tenant: request
                .get("tenant")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            label,
            query: query.clone(),
            bytes: resident_estimate(engine, &query),
        },
        Err(msg) => LineItem::Done(error_line(seq, &msg)),
    }
}

/// Executes an admin op (`stats`/`shutdown`) at its position in the
/// run; `None` for lines that already carry their final response.
fn admin_response(
    line: &str,
    session: &mut fremo_core::engine::Session<'_, GeoPoint>,
    corpus: &[TrajId],
    shutdown: &AtomicBool,
) -> Option<String> {
    let request: Value = serde_json::from_str(line.trim()).ok()?;
    let seq = request.get("seq").and_then(Value::as_u64);
    let mut body = match request.get("op").and_then(Value::as_str)? {
        "shutdown" => {
            // relaxed: standalone flag; the acknowledging response is
            // flushed after this store by the connection loop.
            shutdown.store(true, Ordering::Relaxed);
            serde_json::json!({ "shutdown": true })
        }
        "stats" => {
            let engine = session.engine();
            let stats = engine.stats();
            serde_json::json!({
                "trajectories": corpus.len(),
                "queries": stats.queries,
                "cache_bytes": engine.cache_bytes(),
                "kernel": fremo_trajectory::Kernel::active().name(),
            })
        }
        _ => return None,
    };
    finish_line(&mut body, seq, true);
    Some(body.to_string())
}

/// Executes a pending query run and appends its responses in order.
///
/// Admission happens per *chunk*: queries are grouped greedily while
/// every tenant stays under its query-count cap and byte budget, each
/// chunk's per-tenant totals are admitted atomically (see
/// [`TenantGate::admit_many`] — partial holds would deadlock two
/// batching connections against each other), tenants acquired in
/// sorted order so concurrent connections cannot form an acquisition
/// cycle. A chunk of one runs on the session directly; larger chunks go
/// through [`Engine::execute_batch`].
fn flush_run(
    run: &mut Vec<LineItem>,
    responses: &mut Vec<String>,
    session: &mut fremo_core::engine::Session<'_, GeoPoint>,
    gates: &Gates,
) {
    for chunk in chunk_run(std::mem::take(run), gates) {
        match chunk {
            Chunk::Rejected { seq, message } => responses.push(error_line(seq, &message)),
            Chunk::Admitted(items) => {
                // Atomic per-tenant admission, tenants in sorted order.
                let mut totals: Vec<(&str, usize, usize)> = Vec::new();
                for item in &items {
                    let LineItem::Query { tenant, bytes, .. } = item else {
                        unreachable!("chunks hold queries only");
                    };
                    match totals.iter_mut().find(|(t, _, _)| t == tenant) {
                        Some((_, count, total)) => {
                            *count += 1;
                            *total += *bytes;
                        }
                        None => totals.push((tenant, 1, *bytes)),
                    }
                }
                totals.sort_by_key(|&(tenant, _, _)| tenant);
                let mut permits = Vec::with_capacity(totals.len() * 2);
                for &(tenant, count, total) in &totals {
                    let query_permit = gates.queries.admit_many(tenant, count);
                    // The chunker bounded every tenant's total, so this
                    // cannot hit the reject path.
                    let byte_permit = gates
                        .bytes
                        .admit(tenant, total)
                        .expect("chunk fits the byte budget");
                    permits.push((query_permit, byte_permit));
                }
                execute_chunk(&items, responses, session);
                drop(permits);
            }
        }
    }
}

/// One admission unit of a query run.
enum Chunk {
    /// Queries executing together under one set of permits.
    Admitted(Vec<LineItem>),
    /// A query whose byte estimate exceeds the whole tenant budget —
    /// no queueing would ever admit it.
    Rejected { seq: Option<u64>, message: String },
}

/// Greedily slices a run into chunks whose per-tenant totals fit both
/// gates, preserving order. Oversized single queries become rejects.
fn chunk_run(run: Vec<LineItem>, gates: &Gates) -> Vec<Chunk> {
    let mut chunks = Vec::new();
    let mut current: Vec<LineItem> = Vec::new();
    let mut counts: HashMap<String, (usize, usize)> = HashMap::new();
    for item in run {
        let LineItem::Query {
            seq,
            ref tenant,
            bytes,
            ..
        } = item
        else {
            unreachable!("runs hold queries only");
        };
        if gates.bytes.cap.is_some_and(|cap| bytes > cap) {
            if !current.is_empty() {
                chunks.push(Chunk::Admitted(std::mem::take(&mut current)));
                counts.clear();
            }
            chunks.push(Chunk::Rejected {
                seq,
                message: format!(
                    "rejected: query needs ~{bytes} resident bytes, over the per-tenant \
                     budget of {} (--tenant-bytes)",
                    gates.bytes.cap.unwrap_or(0)
                ),
            });
            continue;
        }
        let (count, total) = counts.get(tenant).copied().unwrap_or((0, 0));
        let fits =
            count < gates.queries.cap && gates.bytes.cap.is_none_or(|cap| total + bytes <= cap);
        if !fits {
            chunks.push(Chunk::Admitted(std::mem::take(&mut current)));
            counts.clear();
        }
        let (count, total) = counts.entry(tenant.clone()).or_insert((0, 0));
        *count += 1;
        *total += bytes;
        current.push(item);
    }
    if !current.is_empty() {
        chunks.push(Chunk::Admitted(current));
    }
    chunks
}

/// Runs one admitted chunk: a singleton through the session's solo
/// path, anything larger as a batch, then serializes outcomes in order.
fn execute_chunk(
    items: &[LineItem],
    responses: &mut Vec<String>,
    session: &mut fremo_core::engine::Session<'_, GeoPoint>,
) {
    if let [LineItem::Query {
        seq, label, query, ..
    }] = items
    {
        responses.push(match session.execute(query) {
            Ok(outcome) => {
                let mut body = outcome_to_json(label, &outcome);
                finish_line(&mut body, *seq, true);
                body.to_string()
            }
            Err(e) => error_line(*seq, &e.to_string()),
        });
        return;
    }
    let queries: Vec<Query> = items
        .iter()
        .map(|item| match item {
            LineItem::Query { query, .. } => query.clone(),
            LineItem::Done(_) => unreachable!("chunks hold queries only"),
        })
        .collect();
    let batch = session.engine().execute_batch(&queries);
    for (item, outcome) in items.iter().zip(batch.outcomes) {
        let LineItem::Query { seq, label, .. } = item else {
            unreachable!("chunks hold queries only");
        };
        responses.push(match outcome {
            Ok(outcome) => {
                let mut body = outcome_to_json(label, &outcome);
                finish_line(&mut body, *seq, true);
                body.to_string()
            }
            Err(e) => error_line(*seq, &e.to_string()),
        });
    }
}

/// Answers one request line with one response line (never panics on bad
/// input; protocol errors become `{"ok":false,...}` responses).
#[cfg(test)]
fn respond(
    line: &str,
    session: &mut fremo_core::engine::Session<'_, GeoPoint>,
    corpus: &[TrajId],
    config: &ServeConfig,
    gates: &Gates,
    shutdown: &AtomicBool,
) -> String {
    let lines = [line.to_string()];
    respond_all(&lines, session, corpus, config, gates, shutdown)
        .pop()
        .unwrap_or_else(|| error_line(None, "empty request"))
}

pub(crate) fn error_line(seq: Option<u64>, msg: &str) -> String {
    let mut body = serde_json::json!({ "error": msg });
    finish_line(&mut body, seq, false);
    body.to_string()
}

/// Prepends `"ok"` (and the echoed `"seq"`, when the client sent one) to
/// a response object.
pub(crate) fn finish_line(body: &mut Value, seq: Option<u64>, ok: bool) {
    if let Value::Object(entries) = body {
        if let Some(seq) = seq {
            entries.insert(0, ("seq".to_string(), Value::from(seq)));
        }
        entries.insert(0, ("ok".to_string(), Value::Bool(ok)));
    }
}

/// Looks a corpus index up, by request field name.
fn traj(request: &Value, field: &str, corpus: &[TrajId]) -> Result<TrajId, String> {
    let idx = request
        .get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field {field:?}"))? as usize;
    corpus
        .get(idx)
        .copied()
        .ok_or_else(|| format!("{field}={idx} out of range (corpus has {})", corpus.len()))
}

/// Looks an array of corpus indices up, by request field name.
fn traj_list(request: &Value, field: &str, corpus: &[TrajId]) -> Result<Vec<TrajId>, String> {
    let items = request
        .get(field)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing array field {field:?}"))?;
    items
        .iter()
        .map(|v| {
            let idx = v
                .as_u64()
                .ok_or_else(|| format!("field {field:?} must hold non-negative integers"))?
                as usize;
            corpus
                .get(idx)
                .copied()
                .ok_or_else(|| format!("{field}[{idx}] out of range (corpus has {})", corpus.len()))
        })
        .collect()
}

fn positive_f64(request: &Value, field: &str) -> Result<f64, String> {
    let eps = request
        .get(field)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing number field {field:?}"))?;
    if !eps.is_finite() || eps < 0.0 {
        return Err(format!("field {field:?} must be finite and ≥ 0"));
    }
    Ok(eps)
}

/// Translates a request object into an engine [`Query`], applying the
/// given thread clamp and budget ceilings. Shared with the CLI `batch`
/// verb, which passes [`QueryLimits::none`].
pub(crate) fn build_query(
    op: &str,
    request: &Value,
    corpus: &[TrajId],
    limits: &QueryLimits,
) -> Result<(&'static str, Query), String> {
    let xi = || -> Result<usize, String> {
        let xi = request
            .get("xi")
            .and_then(Value::as_u64)
            .ok_or("missing integer field \"xi\"")? as usize;
        if xi == 0 {
            return Err("field \"xi\" must be at least 1".into());
        }
        Ok(xi)
    };
    let (label, builder): (&'static str, QueryBuilder) = match op {
        "motif" => (
            "motif",
            Query::motif(traj(request, "id", corpus)?).xi(xi()?),
        ),
        "topk" => {
            let k = request.get("k").and_then(Value::as_u64).unwrap_or(1) as usize;
            (
                "topk",
                Query::top_k(traj(request, "id", corpus)?, k).xi(xi()?),
            )
        }
        "motif-between" => (
            "motif-pair",
            Query::motif_between(traj(request, "a", corpus)?, traj(request, "b", corpus)?)
                .xi(xi()?),
        ),
        "join" => (
            "join",
            Query::join(
                traj_list(request, "ids", corpus)?,
                positive_f64(request, "eps")?,
            ),
        ),
        "join-between" => (
            "join",
            Query::join_between(
                traj_list(request, "a", corpus)?,
                traj_list(request, "b", corpus)?,
                positive_f64(request, "eps")?,
            ),
        ),
        "cluster" => {
            let window = request
                .get("window")
                .and_then(Value::as_u64)
                .ok_or("missing integer field \"window\"")? as usize;
            let stride = request
                .get("stride")
                .and_then(Value::as_u64)
                .ok_or("missing integer field \"stride\"")? as usize;
            (
                "cluster",
                Query::cluster(
                    traj(request, "id", corpus)?,
                    window,
                    stride,
                    positive_f64(request, "eps")?,
                ),
            )
        }
        "measures" => (
            "compare",
            Query::measures(
                traj(request, "a", corpus)?,
                traj(request, "b", corpus)?,
                positive_f64(request, "eps")?,
            ),
        ),
        other => return Err(format!("unknown op {other:?}")),
    };

    let mut builder = builder;
    if let Some(tau) = request.get("tau").and_then(Value::as_u64) {
        builder = builder.group_size((tau as usize).max(1));
    }
    if let Some(name) = request.get("algorithm").and_then(Value::as_str) {
        let choice: AlgorithmChoice = name.parse().map_err(|e| format!("{e}"))?;
        builder = builder.algorithm(choice);
    }

    // Thread clamp: resolve the request (0 = global budget) exactly as
    // the CLI would, then apply the per-tenant ceiling. Clamping cannot
    // change results — parallel answers are bit-identical to serial.
    let requested = request
        .get("threads")
        .and_then(Value::as_u64)
        .map(|t| t as usize);
    if requested.is_some() || limits.tenant_threads > 0 {
        let mut threads = resolve_threads(requested.unwrap_or(0));
        if limits.tenant_threads > 0 {
            threads = threads.min(limits.tenant_threads);
        }
        builder = builder.execution(ExecutionMode::Parallel { threads });
    }

    // Budget: the client may shrink its own budget but never exceed the
    // server ceiling.
    let secs = match (
        request.get("budget_seconds").and_then(Value::as_f64),
        limits.budget_seconds,
    ) {
        (Some(client), Some(cap)) => Some(client.min(cap)),
        (client, cap) => client.or(cap),
    };
    let subsets = match (
        request.get("budget_subsets").and_then(Value::as_u64),
        limits.budget_subsets,
    ) {
        (Some(client), Some(cap)) => Some(client.min(cap)),
        (client, cap) => client.or(cap),
    };
    let mut budget = QueryBudget::default();
    if let Some(secs) = secs {
        if !secs.is_finite() || secs < 0.0 {
            return Err("field \"budget_seconds\" must be finite and ≥ 0".into());
        }
        budget = budget.with_max_seconds(secs);
    }
    if let Some(subsets) = subsets {
        budget = budget.with_max_subsets(subsets);
    }
    if !budget.is_unlimited() {
        builder = builder.budget(budget);
    }
    Ok((label, builder.build()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_of(engine: &Engine<GeoPoint>, count: usize) -> Vec<TrajId> {
        engine.register_all((0..count).map(|s| Dataset::GeoLife.generate(64, s as u64)))
    }

    fn test_config(tenant_bytes: Option<usize>) -> ServeConfig {
        ServeConfig {
            addr: String::new(),
            max_clients: 4,
            tenant_queries: 2,
            tenant_bytes,
            limits: QueryLimits::none(),
        }
    }

    fn test_gates(config: &ServeConfig) -> Gates {
        Gates {
            queries: TenantGate::new(config.tenant_queries),
            bytes: TenantByteGate::new(config.tenant_bytes),
        }
    }

    #[test]
    fn requests_map_to_queries_and_bad_input_is_an_error() {
        let engine = Engine::new();
        let ids = corpus_of(&engine, 3);
        assert_eq!(ids.len(), 3);
        let limits = QueryLimits {
            tenant_threads: 2,
            budget_seconds: Some(10.0),
            budget_subsets: None,
        };
        let ok = serde_json::from_str(r#"{"op":"motif","id":0,"xi":8,"threads":16}"#).unwrap();
        let (label, _query) = build_query("motif", &ok, &ids, &limits).unwrap();
        assert_eq!(label, "motif");

        for bad in [
            r#"{"op":"motif","xi":8}"#,                  // missing id
            r#"{"op":"motif","id":9,"xi":8}"#,           // out of range
            r#"{"op":"motif","id":0}"#,                  // missing xi
            r#"{"op":"motif","id":0,"xi":0}"#,           // zero xi
            r#"{"op":"join","ids":[0,"x"],"eps":1.0}"#,  // non-integer id
            r#"{"op":"cluster","id":0,"eps":1.0}"#,      // missing window
            r#"{"op":"measures","a":0,"b":1,"eps":-1}"#, // negative eps
        ] {
            let v = serde_json::from_str(bad).unwrap();
            let op = v["op"].as_str().unwrap().to_string();
            assert!(
                build_query(&op, &v, &ids, &limits).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn responses_carry_ok_flag_and_echo_seq() {
        let engine = Engine::new();
        let ids = corpus_of(&engine, 1);
        let config = test_config(None);
        let gates = test_gates(&config);
        let shutdown = AtomicBool::new(false);
        let mut session = engine.session();

        let good = respond(
            r#"{"op":"motif","id":0,"xi":8,"seq":7}"#,
            &mut session,
            &ids,
            &config,
            &gates,
            &shutdown,
        );
        let v = serde_json::from_str(&good).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(v["seq"].as_u64(), Some(7));
        assert_eq!(v["query"].as_str(), Some("motif"));

        let bad = respond("not json", &mut session, &ids, &config, &gates, &shutdown);
        let v = serde_json::from_str(&bad).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert!(v["error"].as_str().unwrap().contains("bad JSON"));

        let down = respond(
            r#"{"op":"shutdown"}"#,
            &mut session,
            &ids,
            &config,
            &gates,
            &shutdown,
        );
        let v = serde_json::from_str(&down).unwrap();
        assert_eq!(v["shutdown"].as_bool(), Some(true));
        assert!(shutdown.load(Ordering::Relaxed));
    }

    #[test]
    fn drained_runs_batch_and_keep_request_order() {
        let engine = Engine::new();
        let ids = corpus_of(&engine, 2);
        let config = test_config(None);
        let gates = test_gates(&config);
        let shutdown = AtomicBool::new(false);
        let mut session = engine.session();

        // A pipelined run: queries (two identical — dedup inside the
        // batch), a protocol error mid-run, a stats op, more queries.
        let lines: Vec<String> = [
            r#"{"op":"motif","id":0,"xi":8,"seq":1}"#,
            r#"{"op":"motif","id":0,"xi":8,"seq":2}"#,
            r#"{"op":"motif","id":9,"xi":8,"seq":3}"#,
            r#"{"op":"stats","seq":4}"#,
            r#"{"op":"topk","id":0,"k":2,"xi":8,"seq":5}"#,
            r#"{"op":"measures","a":0,"b":1,"eps":2.5,"seq":6}"#,
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
        let responses = respond_all(&lines, &mut session, &ids, &config, &gates, &shutdown);
        assert_eq!(responses.len(), lines.len());
        for (i, response) in responses.iter().enumerate() {
            let v: Value = serde_json::from_str(response).unwrap();
            assert_eq!(v["seq"].as_u64(), Some(i as u64 + 1), "response {i}");
            let expect_ok = i != 2; // the out-of-range id
            assert_eq!(v["ok"].as_bool(), Some(expect_ok), "response {i}");
        }
        // The two identical motif queries answered identically.
        let a: Value = serde_json::from_str(&responses[0]).unwrap();
        let b: Value = serde_json::from_str(&responses[1]).unwrap();
        assert_eq!(a["motifs"], b["motifs"]);

        // Nothing leaked a permit: both gates are idle again.
        assert!(gates.queries.inflight.lock().unwrap().is_empty());
        assert!(gates.bytes.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn byte_gate_rejects_oversized_and_queues_within_budget() {
        let gate = TenantByteGate::new(Some(1000));
        let err = match gate.admit("t", 1001) {
            Err(e) => e,
            Ok(_) => panic!("oversized admit should be rejected"),
        };
        assert!(err.contains("1001") && err.contains("1000"), "{err}");

        let a = gate.admit("t", 800).unwrap();
        // Another tenant has its own budget.
        drop(gate.admit("u", 900).unwrap());
        // The same tenant's next query queues until bytes free up.
        let admitted = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _b = gate.admit("t", 300).unwrap();
                admitted.store(true, Ordering::Relaxed);
            });
            std::thread::sleep(Duration::from_millis(50));
            assert!(!admitted.load(Ordering::Relaxed), "budget was not enforced");
            drop(a);
        });
        assert!(admitted.load(Ordering::Relaxed));
    }

    #[test]
    fn tenant_byte_budget_rejects_through_the_protocol() {
        let engine = Engine::new();
        let ids = corpus_of(&engine, 1);
        // 64-point trajectory → dense matrix ≈ 64·64·8 = 32768 bytes;
        // a 1000-byte budget cannot ever hold it.
        let config = test_config(Some(1000));
        let gates = test_gates(&config);
        let shutdown = AtomicBool::new(false);
        let mut session = engine.session();
        let response = respond(
            r#"{"op":"motif","id":0,"xi":8,"seq":1}"#,
            &mut session,
            &ids,
            &config,
            &gates,
            &shutdown,
        );
        let v: Value = serde_json::from_str(&response).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(false));
        let msg = v["error"].as_str().unwrap();
        assert!(
            msg.contains("32768") && msg.contains("1000") && msg.contains("tenant-bytes"),
            "reject message should name the estimate and the budget: {msg}"
        );
    }

    #[test]
    fn chunking_respects_tenant_caps() {
        let engine = Engine::new();
        let ids = corpus_of(&engine, 2);
        let config = test_config(Some(100));
        let gates = test_gates(&config);
        let query = || LineItem::Query {
            seq: None,
            tenant: "t".into(),
            label: "motif",
            query: Query::measures(ids[0], ids[1], 1.0).build(),
            bytes: 60,
        };
        // Three 60-byte queries under a 100-byte budget and a 2-query
        // cap: every chunk must hold exactly one.
        let chunks = chunk_run(vec![query(), query(), query()], &gates);
        assert_eq!(chunks.len(), 3);
        assert!(chunks
            .iter()
            .all(|c| matches!(c, Chunk::Admitted(items) if items.len() == 1)));
    }

    #[test]
    fn tenant_gate_blocks_at_cap_and_frees_on_drop() {
        let gate = TenantGate::new(1);
        let a = gate.admit("t");
        // A second tenant is unaffected by the first's slot.
        let other = gate.admit("u");
        drop(other);
        // The same tenant's next query blocks until the permit drops.
        let blocked = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _b = gate.admit("t");
                blocked.store(true, Ordering::Relaxed);
            });
            std::thread::sleep(Duration::from_millis(50));
            assert!(!blocked.load(Ordering::Relaxed), "cap was not enforced");
            drop(a);
        });
        assert!(blocked.load(Ordering::Relaxed));
    }
}
