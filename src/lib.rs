//! # fremo — Fréchet-distance trajectory motif discovery
//!
//! Umbrella crate re-exporting the public API of the `fremo` workspace, a
//! reproduction of Tang, Yiu, Mouratidis & Wang, *"Efficient Motif
//! Discovery in Spatial Trajectories Using Discrete Fréchet Distance"*,
//! EDBT 2017.
//!
//! * [`trajectory`] — data model, distances, loaders, synthetic generators.
//! * [`similarity`] — DFD and the alternative measures of the paper's
//!   Table 1 (ED, DTW, LCSS, EDR, Hausdorff).
//! * [`motif`] — the paper's contribution: `BruteDP`, `BTM`, `GTM`, `GTM*`
//!   plus the lower-bound machinery, and the session-oriented
//!   [`Engine`](motif::engine::Engine) serving motif, top-k, join, and
//!   cluster workloads over a registered corpus.
//!
//! ## Quickstart
//!
//! Register trajectories with an [`Engine`](motif::engine::Engine) once,
//! then run typed queries against them. The engine memoizes per-trajectory
//! search state, so repeated queries on the same corpus skip the `O(n²)`
//! precomputation, and `AlgorithmChoice::Auto` (the default) picks the
//! paper's best algorithm for the input size.
//!
//! ```
//! use fremo::prelude::*;
//!
//! let engine = Engine::new();
//! let id = engine.register(fremo::trajectory::gen::geolife_like(300, 42));
//!
//! let outcome = engine
//!     .execute(&Query::motif(id).xi(20).build())
//!     .expect("valid query");
//! let motif = outcome.motif().expect("found a motif");
//! println!(
//!     "[{}] motif: S[{}..={}] ~ S[{}..={}]  dfd = {:.2} m",
//!     outcome.algorithm, motif.first.0, motif.first.1, motif.second.0, motif.second.1,
//!     motif.distance
//! );
//! ```
//!
//! The algorithms remain directly invocable for expert use (custom
//! distance sources, no corpus): `Gtm.discover(&trajectory, &config)` —
//! see [`motif::MotifDiscovery`].

pub use fremo_core as motif;
pub use fremo_similarity as similarity;
pub use fremo_trajectory as trajectory;

/// Convenient glob-importable surface of the most used items.
pub mod prelude {
    pub use fremo_core::engine::{
        AlgorithmChoice, BatchOutcome, BatchStats, CacheReport, Engine, EngineError, EngineStats,
        ExecutionMode, MotifScope, Query, QueryBudget, QueryBuilder, QueryKind, QueryOutcome,
        QueryResults, Session, TrajId,
    };
    pub use fremo_core::{
        BoundKind, BoundSelection, BruteDp, Btm, Gtm, GtmStar, Motif, MotifConfig, MotifDiscovery,
        SearchStats,
    };
    pub use fremo_similarity::{dfd, SimilarityMeasure};
    pub use fremo_trajectory::{
        EuclideanPoint, GeoPoint, GroundDistance, SubTrajectory, Trajectory,
    };
}
