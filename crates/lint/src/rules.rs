//! The source-level lint passes (L1–L6) plus suppression handling (L0).
//!
//! Every pass walks the token stream produced by [`crate::lexer`], so
//! nothing fires on comments or string literals, and multi-line method
//! chains (`map\n.iter()`) are seen as one sequence. Findings inside
//! `#[cfg(test)]` regions (and files under `tests/`, `benches/`,
//! `examples/`) are dropped: the invariants protect *library* result
//! paths, and tests are free to `unwrap()`.
//!
//! See `docs/LINTS.md` for the invariant each lint protects and the
//! exact detection rule.

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::{Finding, LintId, Options};
use std::collections::{BTreeMap, BTreeSet};

/// Methods whose comparator closure is checked by L1.
const SORT_CMP: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "min_by",
    "max_by",
    "binary_search_by",
];

/// Methods whose *key* closure is checked by L1 (a float key is not
/// totally ordered).
const SORT_KEY: &[&str] = &[
    "sort_by_key",
    "sort_unstable_by_key",
    "sort_by_cached_key",
    "min_by_key",
    "max_by_key",
];

/// Iteration adaptors that expose hash-order (L2).
const HASH_ITER: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Panicking calls banned in library code (L3). `unreachable!` is
/// deliberately absent: it is the idiomatic exhaustiveness guard for
/// match arms the compiler cannot see through, and banning it would
/// only breed blanket suppressions.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// File names treated as exact-DFD kernels for L6.
const KERNEL_FILES: &[&str] = &["dp.rs", "brute.rs", "matrix.rs"];

/// Runs every enabled source lint over one file.
///
/// `path` is the workspace-relative path with `/` separators; it drives
/// the per-lint scope rules, so callers linting fixture text pass a
/// *virtual* path (e.g. `crates/core/src/fixture.rs`).
pub fn lint_source(path: &str, src: &str, opts: &Options) -> Vec<Finding> {
    if is_test_path(path) {
        return Vec::new();
    }
    let lexed = lex(src);
    let ctx = FileCtx::new(path, &lexed.toks, &lexed.comments);

    let mut raw: Vec<Finding> = Vec::new();
    if ctx.in_scope_core_similarity() {
        l1_float_total_order(&ctx, &mut raw);
        l3_no_panic(&ctx, &mut raw);
    }
    if ctx.in_scope_core() {
        l2_hash_iteration(&ctx, &mut raw);
    }
    l4_justified_relaxed_and_unsafe(&ctx, &mut raw);
    l5_allow_needs_reason(&ctx, &mut raw);
    if ctx.is_kernel_file() {
        l6_kernel_exactness(&ctx, &mut raw);
    }

    raw.retain(|f| !ctx.is_test_line(f.line) && !opts.disabled.contains(&f.lint));
    ctx.apply_suppressions(raw, opts)
}

/// Whether a path is test-only code, exempt from all source lints.
pub fn is_test_path(path: &str) -> bool {
    path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
        || path.ends_with("build.rs")
}

/// A parsed `// fremo-lint: allow(<id>) -- <reason>` comment.
struct Suppression {
    line: u32,
    id: LintId,
    used: bool,
}

/// Per-file lint context: tokens, comment index, test regions.
struct FileCtx<'a> {
    path: &'a str,
    toks: &'a [Tok],
    /// Plain (non-doc) comment text per line, concatenated.
    plain: BTreeMap<u32, String>,
    /// Lines that hold at least one code token.
    code_lines: BTreeSet<u32>,
    /// Inclusive line ranges under `#[cfg(test)]` / `#[test]`.
    test_ranges: Vec<(u32, u32)>,
    suppressions: Vec<Suppression>,
    /// L0 findings produced while parsing suppressions.
    l0: Vec<Finding>,
}

impl<'a> FileCtx<'a> {
    fn new(path: &'a str, toks: &'a [Tok], comments: &'a [Comment]) -> Self {
        let mut plain: BTreeMap<u32, String> = BTreeMap::new();
        for c in comments.iter().filter(|c| !c.doc) {
            let slot = plain.entry(c.line).or_default();
            slot.push(' ');
            slot.push_str(&c.text);
        }
        let code_lines: BTreeSet<u32> = toks.iter().map(|t| t.line).collect();
        let test_ranges = test_regions(toks);
        let mut ctx = FileCtx {
            path,
            toks,
            plain,
            code_lines,
            test_ranges,
            suppressions: Vec::new(),
            l0: Vec::new(),
        };
        ctx.parse_suppressions();
        ctx
    }

    fn in_scope_core(&self) -> bool {
        self.path.contains("crates/core/")
    }

    fn in_scope_core_similarity(&self) -> bool {
        self.path.contains("crates/core/") || self.path.contains("crates/similarity/")
    }

    fn is_kernel_file(&self) -> bool {
        self.path.contains("crates/")
            && KERNEL_FILES
                .iter()
                .any(|k| self.path.rsplit('/').next() == Some(*k))
    }

    fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// True when a plain comment containing `marker` sits on `line` or
    /// on one of the two lines above it.
    fn has_marker(&self, line: u32, marker: &str) -> bool {
        (line.saturating_sub(2)..=line)
            .any(|l| self.plain.get(&l).is_some_and(|t| t.contains(marker)))
    }

    fn parse_suppressions(&mut self) {
        let lines: Vec<(u32, String)> = self.plain.iter().map(|(l, t)| (*l, t.clone())).collect();
        for (line, text) in lines {
            let mut rest = text.as_str();
            while let Some(pos) = rest.find("fremo-lint:") {
                let body = rest[pos + "fremo-lint:".len()..].trim_start();
                rest = &rest[pos + "fremo-lint:".len()..];
                if self.is_test_line(line) {
                    continue; // test code needs no suppressions
                }
                match parse_suppression_body(body) {
                    Ok(id) => self.suppressions.push(Suppression {
                        line,
                        id,
                        used: false,
                    }),
                    Err(msg) => self.l0.push(Finding {
                        file: self.path.to_string(),
                        line,
                        lint: LintId::L0,
                        message: msg,
                    }),
                }
            }
        }
    }

    /// Drops findings covered by a suppression on the same line or in
    /// the contiguous comment-only block directly above, then reports
    /// malformed and unused suppressions as L0.
    fn apply_suppressions(mut self, raw: Vec<Finding>, opts: &Options) -> Vec<Finding> {
        let mut kept: Vec<Finding> = Vec::new();
        for f in raw {
            let mut covered = false;
            for s in self.suppressions.iter_mut() {
                if s.id == f.lint && suppression_covers(s.line, f.line, &self.code_lines) {
                    s.used = true;
                    covered = true;
                }
            }
            if !covered {
                kept.push(f);
            }
        }
        if !opts.disabled.contains(&LintId::L0) {
            kept.append(&mut self.l0);
            for s in &self.suppressions {
                if !s.used && !opts.disabled.contains(&s.id) {
                    kept.push(Finding {
                        file: self.path.to_string(),
                        line: s.line,
                        lint: LintId::L0,
                        message: format!(
                            "unused suppression for {}: no matching finding on this or the next code line",
                            s.id.as_str()
                        ),
                    });
                }
            }
        }
        kept
    }

    fn finding(&self, out: &mut Vec<Finding>, line: u32, lint: LintId, message: impl Into<String>) {
        out.push(Finding {
            file: self.path.to_string(),
            line,
            lint,
            message: message.into(),
        });
    }
}

/// Parses the text after `fremo-lint:`; returns the target lint id or
/// an L0 message.
fn parse_suppression_body(body: &str) -> Result<LintId, String> {
    const SHAPE: &str = "suppression must be `// fremo-lint: allow(<L1..L6>) -- <reason>`";
    let Some(args) = body.strip_prefix("allow(") else {
        return Err(SHAPE.to_string());
    };
    let Some(close) = args.find(')') else {
        return Err(SHAPE.to_string());
    };
    let id_str = args[..close].trim();
    let Some(id) = LintId::parse(id_str) else {
        return Err(format!(
            "unknown lint id `{id_str}` in suppression; {SHAPE}"
        ));
    };
    if matches!(id, LintId::L0 | LintId::L7) {
        return Err(format!(
            "{} cannot be suppressed inline; {SHAPE}",
            id.as_str()
        ));
    }
    let tail = args[close + 1..].trim_start();
    let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err(format!(
            "suppression for {} is missing its reason; {SHAPE}",
            id.as_str()
        ));
    }
    Ok(id)
}

/// A suppression at `sline` covers a finding at `fline` when it sits on
/// the same line, or in the run of comment-only lines immediately above
/// the finding's line.
fn suppression_covers(sline: u32, fline: u32, code_lines: &BTreeSet<u32>) -> bool {
    if sline == fline {
        return true;
    }
    if sline >= fline {
        return false;
    }
    // Every line strictly between the suppression and the finding must
    // be free of code tokens (comment-only or blank).
    ((sline)..fline).skip(1).all(|l| !code_lines.contains(&l)) && !code_lines.contains(&sline)
}

/// Computes `#[cfg(test)]` / `#[test]` item ranges from the token
/// stream: after a test attribute, the region runs to the matching `}`
/// of the next brace (or the terminating `;` for brace-less items).
fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct && toks[i].text == "#" {
            let attr_line = toks[i].line;
            let mut j = i + 1;
            if j < toks.len() && toks[j].text == "!" {
                j += 1; // inner attribute: same bracket skipping below
            }
            if j < toks.len() && toks[j].text == "[" {
                let (end, is_test) = scan_attr(toks, j);
                if is_test {
                    let close = item_end(toks, end + 1);
                    ranges.push((attr_line, close));
                    i = end + 1;
                    continue;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Scans one `[...]` attribute starting at the opening bracket; returns
/// (index of closing bracket, whether it marks test-only code).
fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_cfg = false;
    let mut has_test = false;
    let mut has_not = false;
    let mut first_ident: Option<&str> = None;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            (TokKind::Ident, name) => {
                if first_ident.is_none() {
                    first_ident = Some(&toks[i].text);
                }
                if name == "cfg" {
                    has_cfg = true;
                }
                if name == "test" || name == "bench" {
                    has_test = true;
                }
                // `#[cfg(not(test))]` gates *library* code; treating it
                // as a test region would blind every lint to it.
                if name == "not" {
                    has_not = true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let direct = matches!(first_ident, Some("test") | Some("bench"));
    (i, (has_cfg && has_test && !has_not) || direct)
}

/// Finds the line where the item following an attribute ends: the
/// matching `}` of its first brace, or a `;` seen before any brace.
fn item_end(toks: &[Tok], from: usize) -> u32 {
    let mut i = from;
    // Skip any further attributes between the test attr and the item.
    while i + 1 < toks.len() && toks[i].text == "#" && toks[i + 1].text == "[" {
        let (end, _) = scan_attr(toks, i + 1);
        i = end + 1;
    }
    let mut depth = 0usize;
    while i < toks.len() {
        match toks[i].text.as_str() {
            ";" if depth == 0 => return toks[i].line,
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return toks[i].line;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.last().map_or(0, |t| t.line)
}

/// Returns the token index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len() - 1
}

// ---------------------------------------------------------------------
// L1 — float ordering must be total
// ---------------------------------------------------------------------

fn l1_float_total_order(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if name == "partial_cmp" {
            ctx.finding(
                out,
                toks[i].line,
                LintId::L1,
                "partial_cmp is not a total order over floats (NaN breaks sort/merge determinism); use f64::total_cmp",
            );
            continue;
        }
        let next_is_paren = toks.get(i + 1).is_some_and(|t| t.text == "(");
        if !next_is_paren {
            continue;
        }
        if SORT_CMP.contains(&name) {
            let close = matching_paren(toks, i + 1);
            let body = &toks[i + 1..close];
            // A real comparator call (`x.total_cmp(y)`, `Ord::cmp`), not
            // a bare path segment like `std::cmp::Ordering`.
            let has_total = body.iter().zip(body.iter().skip(1)).any(|(t, next)| {
                t.kind == TokKind::Ident
                    && (t.text == "total_cmp" || t.text == "cmp")
                    && next.text == "("
            });
            let has_raw_compare = body
                .iter()
                .any(|t| t.kind == TokKind::Punct && (t.text == "<" || t.text == ">"));
            if !has_total && has_raw_compare {
                ctx.finding(
                    out,
                    toks[i].line,
                    LintId::L1,
                    format!("{name} comparator uses a raw </> comparison; compare with f64::total_cmp (or Ord::cmp) so the order is total"),
                );
            }
        } else if SORT_KEY.contains(&name) {
            let close = matching_paren(toks, i + 1);
            let floaty = toks[i + 1..close].iter().any(|t| match t.kind {
                TokKind::Ident => t.text == "f32" || t.text == "f64",
                TokKind::Literal => t.text.ends_with("f32") || t.text.ends_with("f64"),
                _ => false,
            });
            if floaty {
                ctx.finding(
                    out,
                    toks[i].line,
                    LintId::L1,
                    format!("{name} with a float key is not a total order; sort with total_cmp or an integer key (f64::to_bits trick)"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// L2 — hash iteration must not feed results or eviction
// ---------------------------------------------------------------------

fn l2_hash_iteration(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    // Hash-typed names: `HashMap`/`HashSet` plus file-local aliases
    // (`type SubsetCaps = HashMap<...>`).
    let mut hash_tys: BTreeSet<&str> = ["HashMap", "HashSet"].into();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "type"
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            let mut j = i + 2;
            let mut rhs_hash = false;
            while j < toks.len() && toks[j].text != ";" {
                if toks[j].text == "HashMap" || toks[j].text == "HashSet" {
                    rhs_hash = true;
                }
                j += 1;
            }
            if rhs_hash {
                hash_tys.insert(toks[i + 1].text.as_str());
            }
        }
    }

    // Names bound to hash types: annotations (`name: [&mut] Hash<..>`,
    // through `Option`/`Box`/`Arc`/`Rc` wrappers and path prefixes) and
    // `let [mut] name = Hash::new()/with_capacity()/default()`.
    let mut tracked: BTreeSet<&str> = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !hash_tys.contains(toks[i].text.as_str()) {
            continue;
        }
        if let Some(name) = annotated_name(toks, i) {
            tracked.insert(name);
        }
        if toks.get(i + 1).is_some_and(|t| t.text == ":")
            && toks.get(i + 2).is_some_and(|t| t.text == ":")
            && toks.get(i + 3).is_some_and(|t| {
                matches!(
                    t.text.as_str(),
                    "new" | "with_capacity" | "default" | "from"
                )
            })
        {
            // Walk back a short window for `let [mut] name [: ty] =`.
            let lo = i.saturating_sub(16);
            for k in (lo..i).rev() {
                if toks[k].kind == TokKind::Ident && toks[k].text == "let" {
                    let mut n = k + 1;
                    if toks.get(n).is_some_and(|t| t.text == "mut") {
                        n += 1;
                    }
                    if toks.get(n).is_some_and(|t| t.kind == TokKind::Ident) {
                        tracked.insert(toks[n].text.as_str());
                    }
                    break;
                }
            }
        }
    }
    if tracked.is_empty() {
        return;
    }

    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !tracked.contains(toks[i].text.as_str()) {
            continue;
        }
        // name.iter() and friends, possibly across lines.
        if toks.get(i + 1).is_some_and(|t| t.text == ".")
            && toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && HASH_ITER.contains(&t.text.as_str()))
            && toks.get(i + 3).is_some_and(|t| t.text == "(")
        {
            ctx.finding(
                out,
                toks[i + 2].line,
                LintId::L2,
                format!(
                    "iteration over hash-ordered `{}` ({}): hash order is nondeterministic and must not feed results or eviction; use a sorted/indexed structure or keyed lookups",
                    toks[i].text, toks[i + 2].text
                ),
            );
        }
        // `for pat in [&[mut]] [path.]name {` — the loop iterates the
        // container itself.
        if toks.get(i + 1).is_some_and(|t| t.text == "{") {
            // Walk back: the `in` keyword must appear before any `{`/`;`.
            let lo = i.saturating_sub(8);
            for k in (lo..i).rev() {
                let t = &toks[k];
                if t.kind == TokKind::Ident && t.text == "in" {
                    ctx.finding(
                        out,
                        toks[i].line,
                        LintId::L2,
                        format!(
                            "for-loop over hash-ordered `{}`: hash order is nondeterministic and must not feed results or eviction",
                            toks[i].text
                        ),
                    );
                    break;
                }
                let path_part = t.text == "." || t.text == "&" || t.kind == TokKind::Ident;
                if !path_part {
                    break;
                }
            }
        }
    }
}

/// For a hash-type token at `i`, walks left through type wrappers and
/// path prefixes looking for an `name :` annotation.
fn annotated_name(toks: &[Tok], i: usize) -> Option<&str> {
    let mut j = i.checked_sub(1)?;
    loop {
        let t = toks.get(j)?;
        let skip = match t.kind {
            TokKind::Punct => matches!(t.text.as_str(), "&" | "<"),
            TokKind::Ident => matches!(
                t.text.as_str(),
                "mut" | "dyn" | "Option" | "Box" | "Arc" | "Rc" | "Mutex" | "RwLock"
            ),
            TokKind::Lifetime => true,
            _ => false,
        };
        if skip {
            j = j.checked_sub(1)?;
            continue;
        }
        // Path prefix `seg::` — skip the two colons and the segment.
        if t.text == ":" && toks.get(j.checked_sub(1)?).map(|p| p.text.as_str()) == Some(":") {
            j = j.checked_sub(3)?;
            continue;
        }
        if t.text == ":" {
            let prev = toks.get(j.checked_sub(1)?)?;
            if prev.kind == TokKind::Ident {
                return Some(prev.text.as_str());
            }
            return None;
        }
        return None;
    }
}

// ---------------------------------------------------------------------
// L3 — no panicking calls in library code
// ---------------------------------------------------------------------

fn l3_no_panic(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        let is_method_call = |m: &str| {
            name == m
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|t| t.text == "(")
        };
        if is_method_call("unwrap") || is_method_call("expect") {
            ctx.finding(
                out,
                toks[i].line,
                LintId::L3,
                format!(".{name}() in library code can panic on live queries; return an error, or suppress with a documented invariant"),
            );
        }
        if PANIC_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|t| t.text == "!") {
            ctx.finding(
                out,
                toks[i].line,
                LintId::L3,
                format!("{name}! in library code aborts live queries; return an error instead"),
            );
        }
    }
}

// ---------------------------------------------------------------------
// L4 — Relaxed atomics and unsafe need adjacent justification
// ---------------------------------------------------------------------

fn l4_justified_relaxed_and_unsafe(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Relaxed"
            && i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].text == "Ordering"
            && !ctx.has_marker(t.line, "relaxed:")
        {
            ctx.finding(
                out,
                t.line,
                LintId::L4,
                "Ordering::Relaxed without an adjacent `// relaxed:` justification; state why no ordering is needed (or use a stronger ordering)",
            );
        }
        if t.text == "unsafe" && !ctx.has_marker(t.line, "SAFETY:") {
            ctx.finding(
                out,
                t.line,
                LintId::L4,
                "unsafe without an adjacent `// SAFETY:` comment stating the invariant that makes it sound",
            );
        }
    }
}

// ---------------------------------------------------------------------
// L5 — #[allow(...)] needs a recorded reason
// ---------------------------------------------------------------------

fn l5_allow_needs_reason(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if toks[i].text != "#" {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.text == "!") {
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.text == "[")
            && toks
                .get(j + 1)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text == "allow")
            && !ctx.has_marker(toks[i].line, "lint:")
        {
            ctx.finding(
                out,
                toks[i].line,
                LintId::L5,
                "#[allow(...)] without an adjacent `// lint:` reason; say why the warning is wrong here",
            );
        }
    }
}

// ---------------------------------------------------------------------
// L6 — exact kernels stay in f64
// ---------------------------------------------------------------------

fn l6_kernel_exactness(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for t in ctx.toks {
        let is_f32 = match t.kind {
            TokKind::Ident => t.text == "f32",
            TokKind::Literal => t.text.ends_with("f32"),
            _ => false,
        };
        if is_f32 {
            ctx.finding(
                out,
                t.line,
                LintId::L6,
                "f32 inside an exact DFD kernel: results must stay bit-exact in f64 until the opt-in approximate mode lands (ROADMAP item 4)",
            );
        }
    }
}
