//! `fremo serve` — a thread-per-connection query server over one shared
//! [`Engine`].
//!
//! The server loads (or generates) a trajectory corpus once, then serves
//! concurrent clients over a line protocol: each request is one JSON
//! object on one line, each response is one JSON object on one line, in
//! request order per connection. Results are computed through per-client
//! [`fremo_core::engine::Session`] handles on the shared engine, so
//! concurrent clients share cached distance matrices and bound tables —
//! and, by the engine's core guarantee, see answers bit-for-bit identical
//! to a serial run on a private engine. See `docs/SERVING.md` for the
//! full protocol schema and the concurrency model.
//!
//! ## Admission control
//!
//! Three independent gates bound what a busy server takes on:
//!
//! * `--max-clients <n>` caps concurrent connections; a client over the
//!   cap receives one `{"ok":false,"error":"server at capacity"}` line
//!   and is disconnected (fail fast beats queueing connects).
//! * `--tenant-queries <n>` caps *in-flight queries per tenant* (the
//!   optional `"tenant"` request field; connections that send none share
//!   the `""` tenant). Excess queries block in admission until a slot
//!   frees — order within one connection is preserved regardless.
//! * `--tenant-threads <n>` clamps the worker threads any single query
//!   may use, after the usual [`resolve_threads`] resolution of the
//!   request's `"threads"` field against `FREMO_THREADS`. Clamping never
//!   changes answers (parallel results are bit-identical to serial).
//!
//! `--budget-seconds` / `--budget-subsets` set server-side ceilings on
//! every query's [`QueryBudget`]; a client may request a *smaller* budget
//! but cannot exceed the server's.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use fremo_core::engine::{
    AlgorithmChoice, Engine, ExecutionMode, Query, QueryBudget, QueryBuilder, TrajId,
};
use fremo_core::pool::resolve_threads;
use fremo_trajectory::gen::Dataset;
use fremo_trajectory::GeoPoint;
use serde_json::Value;

use crate::args::Parsed;
use crate::commands::{load, outcome_to_json, session_engine};

/// How long a connection handler waits on a quiet socket before
/// re-checking the shutdown flag. Bounds the drain time of `shutdown`
/// without imposing any request timeout on clients.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Server configuration resolved from the command line.
struct ServeConfig {
    addr: String,
    max_clients: usize,
    tenant_queries: usize,
    tenant_threads: usize,
    budget_seconds: Option<f64>,
    budget_subsets: Option<u64>,
}

impl ServeConfig {
    fn from_args(args: &Parsed) -> Result<Self, String> {
        let max_clients: usize = args.parsed_or("max-clients", 32)?;
        if max_clients == 0 {
            return Err("--max-clients must be at least 1".into());
        }
        let tenant_queries: usize = args.parsed_or("tenant-queries", 4)?;
        if tenant_queries == 0 {
            return Err("--tenant-queries must be at least 1".into());
        }
        let budget_seconds = match args.optional("budget-seconds") {
            None => None,
            Some(raw) => {
                let secs: f64 = raw
                    .parse()
                    .map_err(|e| format!("invalid value for --budget-seconds: {e}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("--budget-seconds must be finite and ≥ 0".into());
                }
                Some(secs)
            }
        };
        Ok(ServeConfig {
            addr: args.optional("addr").unwrap_or("127.0.0.1:0").to_string(),
            max_clients,
            tenant_queries,
            tenant_threads: args.parsed_or("tenant-threads", 0)?,
            budget_seconds,
            budget_subsets: match args.optional("budget-subsets") {
                None => None,
                Some(raw) => Some(
                    raw.parse()
                        .map_err(|e| format!("invalid value for --budget-subsets: {e}"))?,
                ),
            },
        })
    }
}

/// Per-tenant in-flight query gate: [`TenantGate::admit`] blocks while
/// the tenant is at its cap, and the returned permit frees the slot on
/// drop (including panic unwinds).
struct TenantGate {
    cap: usize,
    inflight: Mutex<HashMap<String, usize>>,
    freed: Condvar,
}

impl TenantGate {
    fn new(cap: usize) -> Self {
        TenantGate {
            cap,
            inflight: Mutex::new(HashMap::new()),
            freed: Condvar::new(),
        }
    }

    fn admit<'g>(&'g self, tenant: &str) -> TenantPermit<'g> {
        let mut inflight = self.inflight.lock().expect("tenant gate poisoned");
        loop {
            let count = inflight.entry(tenant.to_string()).or_insert(0);
            if *count < self.cap {
                *count += 1;
                return TenantPermit {
                    gate: self,
                    tenant: tenant.to_string(),
                };
            }
            inflight = self.freed.wait(inflight).expect("tenant gate poisoned");
        }
    }
}

struct TenantPermit<'g> {
    gate: &'g TenantGate,
    tenant: String,
}

impl Drop for TenantPermit<'_> {
    fn drop(&mut self) {
        let mut inflight = self.gate.inflight.lock().expect("tenant gate poisoned");
        if let Some(count) = inflight.get_mut(&self.tenant) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                inflight.remove(&self.tenant);
            }
        }
        drop(inflight);
        self.gate.freed.notify_all();
    }
}

/// Builds the corpus: every `--corpus` CSV/PLT path (comma-separated),
/// plus `--count` generated trajectories when `--dataset` is given.
fn build_corpus(args: &Parsed, engine: &Engine<GeoPoint>) -> Result<Vec<TrajId>, String> {
    let mut ids = Vec::new();
    if let Some(list) = args.optional("corpus") {
        for path in list.split(',').filter(|p| !p.trim().is_empty()) {
            ids.push(engine.register(load(path.trim())?));
        }
    }
    if let Some(raw) = args.optional("dataset") {
        let dataset: Dataset = raw.parse()?;
        let n: usize = args.required_parsed("n")?;
        let count: usize = args.parsed_or("count", 1)?;
        let seed: u64 = args.parsed_or("seed", 1)?;
        for i in 0..count {
            ids.push(engine.register(dataset.generate(n, seed.wrapping_add(i as u64))));
        }
    }
    if ids.is_empty() {
        return Err(
            "empty corpus: pass --corpus <csv[,csv...]> and/or --dataset <name> --n <len> \
             [--count <k>] [--seed <u64>]"
                .into(),
        );
    }
    Ok(ids)
}

/// `fremo serve [--addr 127.0.0.1:0] [--corpus <csv[,csv...]>]
/// [--dataset <name> --n <len> --count <k> --seed <u64>]
/// [--max-clients 32] [--tenant-queries 4] [--tenant-threads <n>]
/// [--budget-seconds <s>] [--budget-subsets <n>]
/// [--cache-limit <bytes>] [--spill-dir <dir>]`
///
/// Prints `listening <addr>` on stdout once the socket is bound (with
/// `--addr` port 0 this is how callers learn the ephemeral port), then
/// serves until a client sends `{"op":"shutdown"}`. Shutdown drains:
/// the listener stops accepting and every open connection finishes its
/// in-flight request before the process exits.
pub fn serve(args: &Parsed) -> Result<(), String> {
    let config = ServeConfig::from_args(args)?;
    let engine = session_engine(args)?;
    let corpus = build_corpus(args, &engine)?;

    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve local addr: {e}"))?;
    println!("listening {local}");
    // The line above is the readiness signal clients wait for; make sure
    // it is not sitting in a stdio buffer.
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    eprintln!(
        "serving {} trajectories; max {} clients, {} queries/tenant",
        corpus.len(),
        config.max_clients,
        config.tenant_queries
    );

    let shutdown = AtomicBool::new(false);
    let active = AtomicUsize::new(0);
    let gate = TenantGate::new(config.tenant_queries);

    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            // The shutdown response the client already received is the
            // only ordering that matters; it was flushed pre-store.
            // relaxed: standalone flag, no data rides on it.
            if shutdown.load(Ordering::Relaxed) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Best-effort admission count: an off-by-one race briefly
            // over-admits, it cannot corrupt anything.
            // relaxed: gate-only counter (increment and undo alike).
            if active.fetch_add(1, Ordering::Relaxed) >= config.max_clients {
                active.fetch_sub(1, Ordering::Relaxed);
                reject_over_capacity(stream);
                continue;
            }
            let engine = &engine;
            let corpus = &corpus;
            let config = &config;
            let shutdown = &shutdown;
            let active = &active;
            let gate = &gate;
            scope.spawn(move || {
                let _ = handle_connection(stream, engine, corpus, config, gate, shutdown, local);
                // relaxed: see the admission count above.
                active.fetch_sub(1, Ordering::Relaxed);
            });
        }
    });
    Ok(())
}

/// Tells an over-capacity client why it is being disconnected.
fn reject_over_capacity(stream: TcpStream) {
    let mut out = BufWriter::new(stream);
    let _ = writeln!(
        out,
        r#"{{"ok":false,"error":"server at capacity, retry later"}}"#
    );
}

/// One connection: read a request line, answer it, repeat until EOF or
/// shutdown. Responses stay in request order because each connection is
/// handled by exactly one thread.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine<GeoPoint>,
    corpus: &[TrajId],
    config: &ServeConfig,
    gate: &TenantGate,
    shutdown: &AtomicBool,
    local: std::net::SocketAddr,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IDLE_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut session = engine.session();
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // relaxed: standalone flag, polled; see `serve`.
                if shutdown.load(Ordering::Relaxed) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = respond(&line, &mut session, corpus, config, gate, shutdown);
        writeln!(writer, "{response}")?;
        writer.flush()?;
        // relaxed: standalone flag; the response just flushed is the
        // only thing the client must see before we go away.
        if shutdown.load(Ordering::Relaxed) {
            // Wake the accept loop so `serve` can observe the flag even
            // with no further client connecting.
            let _ = TcpStream::connect(local);
            return Ok(());
        }
    }
}

/// Answers one request line with one response line (never panics on bad
/// input; protocol errors become `{"ok":false,...}` responses).
fn respond(
    line: &str,
    session: &mut fremo_core::engine::Session<'_, GeoPoint>,
    corpus: &[TrajId],
    config: &ServeConfig,
    gate: &TenantGate,
    shutdown: &AtomicBool,
) -> String {
    let request = match serde_json::from_str(line.trim()) {
        Ok(v) => v,
        Err(e) => return error_line(None, &format!("bad JSON: {e}")),
    };
    let seq = request.get("seq").and_then(Value::as_u64);
    match answer(&request, session, corpus, config, gate, shutdown) {
        Ok(mut body) => {
            finish_line(&mut body, seq, true);
            body.to_string()
        }
        Err(msg) => error_line(seq, &msg),
    }
}

fn error_line(seq: Option<u64>, msg: &str) -> String {
    let mut body = serde_json::json!({ "error": msg });
    finish_line(&mut body, seq, false);
    body.to_string()
}

/// Prepends `"ok"` (and the echoed `"seq"`, when the client sent one) to
/// a response object.
fn finish_line(body: &mut Value, seq: Option<u64>, ok: bool) {
    if let Value::Object(entries) = body {
        if let Some(seq) = seq {
            entries.insert(0, ("seq".to_string(), Value::from(seq)));
        }
        entries.insert(0, ("ok".to_string(), Value::Bool(ok)));
    }
}

/// Dispatches one parsed request. Query ops run through the session and
/// serialize via [`outcome_to_json`] — the same schema the `--json` CLI
/// flag emits.
fn answer(
    request: &Value,
    session: &mut fremo_core::engine::Session<'_, GeoPoint>,
    corpus: &[TrajId],
    config: &ServeConfig,
    gate: &TenantGate,
    shutdown: &AtomicBool,
) -> Result<Value, String> {
    let op = request
        .get("op")
        .and_then(Value::as_str)
        .ok_or("missing string field \"op\"")?;
    match op {
        "shutdown" => {
            // relaxed: standalone flag; the acknowledging response is
            // written (and flushed) after this store by the caller.
            shutdown.store(true, Ordering::Relaxed);
            Ok(serde_json::json!({ "shutdown": true }))
        }
        "stats" => {
            let engine = session.engine();
            let stats = engine.stats();
            Ok(serde_json::json!({
                "trajectories": corpus.len(),
                "queries": stats.queries,
                "cache_bytes": engine.cache_bytes(),
                "kernel": fremo_trajectory::Kernel::active().name(),
            }))
        }
        _ => {
            let (label, query) = build_query(op, request, corpus, config)?;
            let tenant = request.get("tenant").and_then(Value::as_str).unwrap_or("");
            let permit = gate.admit(tenant);
            let outcome = session.execute(&query).map_err(|e| e.to_string())?;
            drop(permit);
            Ok(outcome_to_json(label, &outcome))
        }
    }
}

/// Looks a corpus index up, by request field name.
fn traj(request: &Value, field: &str, corpus: &[TrajId]) -> Result<TrajId, String> {
    let idx = request
        .get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field {field:?}"))? as usize;
    corpus
        .get(idx)
        .copied()
        .ok_or_else(|| format!("{field}={idx} out of range (corpus has {})", corpus.len()))
}

/// Looks an array of corpus indices up, by request field name.
fn traj_list(request: &Value, field: &str, corpus: &[TrajId]) -> Result<Vec<TrajId>, String> {
    let items = request
        .get(field)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing array field {field:?}"))?;
    items
        .iter()
        .map(|v| {
            let idx = v
                .as_u64()
                .ok_or_else(|| format!("field {field:?} must hold non-negative integers"))?
                as usize;
            corpus
                .get(idx)
                .copied()
                .ok_or_else(|| format!("{field}[{idx}] out of range (corpus has {})", corpus.len()))
        })
        .collect()
}

fn positive_f64(request: &Value, field: &str) -> Result<f64, String> {
    let eps = request
        .get(field)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing number field {field:?}"))?;
    if !eps.is_finite() || eps < 0.0 {
        return Err(format!("field {field:?} must be finite and ≥ 0"));
    }
    Ok(eps)
}

/// Translates a request object into an engine [`Query`], applying the
/// server's tenant thread clamp and budget ceilings.
fn build_query(
    op: &str,
    request: &Value,
    corpus: &[TrajId],
    config: &ServeConfig,
) -> Result<(&'static str, Query), String> {
    let xi = || -> Result<usize, String> {
        let xi = request
            .get("xi")
            .and_then(Value::as_u64)
            .ok_or("missing integer field \"xi\"")? as usize;
        if xi == 0 {
            return Err("field \"xi\" must be at least 1".into());
        }
        Ok(xi)
    };
    let (label, builder): (&'static str, QueryBuilder) = match op {
        "motif" => (
            "motif",
            Query::motif(traj(request, "id", corpus)?).xi(xi()?),
        ),
        "topk" => {
            let k = request.get("k").and_then(Value::as_u64).unwrap_or(1) as usize;
            (
                "topk",
                Query::top_k(traj(request, "id", corpus)?, k).xi(xi()?),
            )
        }
        "motif-between" => (
            "motif-pair",
            Query::motif_between(traj(request, "a", corpus)?, traj(request, "b", corpus)?)
                .xi(xi()?),
        ),
        "join" => (
            "join",
            Query::join(
                traj_list(request, "ids", corpus)?,
                positive_f64(request, "eps")?,
            ),
        ),
        "join-between" => (
            "join",
            Query::join_between(
                traj_list(request, "a", corpus)?,
                traj_list(request, "b", corpus)?,
                positive_f64(request, "eps")?,
            ),
        ),
        "cluster" => {
            let window = request
                .get("window")
                .and_then(Value::as_u64)
                .ok_or("missing integer field \"window\"")? as usize;
            let stride = request
                .get("stride")
                .and_then(Value::as_u64)
                .ok_or("missing integer field \"stride\"")? as usize;
            (
                "cluster",
                Query::cluster(
                    traj(request, "id", corpus)?,
                    window,
                    stride,
                    positive_f64(request, "eps")?,
                ),
            )
        }
        "measures" => (
            "compare",
            Query::measures(
                traj(request, "a", corpus)?,
                traj(request, "b", corpus)?,
                positive_f64(request, "eps")?,
            ),
        ),
        other => return Err(format!("unknown op {other:?}")),
    };

    let mut builder = builder;
    if let Some(tau) = request.get("tau").and_then(Value::as_u64) {
        builder = builder.group_size((tau as usize).max(1));
    }
    if let Some(name) = request.get("algorithm").and_then(Value::as_str) {
        let choice: AlgorithmChoice = name.parse().map_err(|e| format!("{e}"))?;
        builder = builder.algorithm(choice);
    }

    // Thread clamp: resolve the request (0 = global budget) exactly as
    // the CLI would, then apply the per-tenant ceiling. Clamping cannot
    // change results — parallel answers are bit-identical to serial.
    let requested = request
        .get("threads")
        .and_then(Value::as_u64)
        .map(|t| t as usize);
    if requested.is_some() || config.tenant_threads > 0 {
        let mut threads = resolve_threads(requested.unwrap_or(0));
        if config.tenant_threads > 0 {
            threads = threads.min(config.tenant_threads);
        }
        builder = builder.execution(ExecutionMode::Parallel { threads });
    }

    // Budget: the client may shrink its own budget but never exceed the
    // server ceiling.
    let secs = match (
        request.get("budget_seconds").and_then(Value::as_f64),
        config.budget_seconds,
    ) {
        (Some(client), Some(cap)) => Some(client.min(cap)),
        (client, cap) => client.or(cap),
    };
    let subsets = match (
        request.get("budget_subsets").and_then(Value::as_u64),
        config.budget_subsets,
    ) {
        (Some(client), Some(cap)) => Some(client.min(cap)),
        (client, cap) => client.or(cap),
    };
    let mut budget = QueryBudget::default();
    if let Some(secs) = secs {
        if !secs.is_finite() || secs < 0.0 {
            return Err("field \"budget_seconds\" must be finite and ≥ 0".into());
        }
        budget = budget.with_max_seconds(secs);
    }
    if let Some(subsets) = subsets {
        budget = budget.with_max_subsets(subsets);
    }
    if !budget.is_unlimited() {
        builder = builder.budget(budget);
    }
    Ok((label, builder.build()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_of(engine: &Engine<GeoPoint>, count: usize) -> Vec<TrajId> {
        engine.register_all((0..count).map(|s| Dataset::GeoLife.generate(64, s as u64)))
    }

    #[test]
    fn requests_map_to_queries_and_bad_input_is_an_error() {
        let engine = Engine::new();
        let ids = corpus_of(&engine, 3);
        assert_eq!(ids.len(), 3);
        let config = ServeConfig {
            addr: String::new(),
            max_clients: 4,
            tenant_queries: 2,
            tenant_threads: 2,
            budget_seconds: Some(10.0),
            budget_subsets: None,
        };
        let ok = serde_json::from_str(r#"{"op":"motif","id":0,"xi":8,"threads":16}"#).unwrap();
        let (label, _query) = build_query("motif", &ok, &ids, &config).unwrap();
        assert_eq!(label, "motif");

        for bad in [
            r#"{"op":"motif","xi":8}"#,                  // missing id
            r#"{"op":"motif","id":9,"xi":8}"#,           // out of range
            r#"{"op":"motif","id":0}"#,                  // missing xi
            r#"{"op":"motif","id":0,"xi":0}"#,           // zero xi
            r#"{"op":"join","ids":[0,"x"],"eps":1.0}"#,  // non-integer id
            r#"{"op":"cluster","id":0,"eps":1.0}"#,      // missing window
            r#"{"op":"measures","a":0,"b":1,"eps":-1}"#, // negative eps
        ] {
            let v = serde_json::from_str(bad).unwrap();
            let op = v["op"].as_str().unwrap().to_string();
            assert!(
                build_query(&op, &v, &ids, &config).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn responses_carry_ok_flag_and_echo_seq() {
        let engine = Engine::new();
        let ids = corpus_of(&engine, 1);
        let config = ServeConfig {
            addr: String::new(),
            max_clients: 4,
            tenant_queries: 2,
            tenant_threads: 0,
            budget_seconds: None,
            budget_subsets: None,
        };
        let gate = TenantGate::new(config.tenant_queries);
        let shutdown = AtomicBool::new(false);
        let mut session = engine.session();

        let good = respond(
            r#"{"op":"motif","id":0,"xi":8,"seq":7}"#,
            &mut session,
            &ids,
            &config,
            &gate,
            &shutdown,
        );
        let v = serde_json::from_str(&good).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(v["seq"].as_u64(), Some(7));
        assert_eq!(v["query"].as_str(), Some("motif"));

        let bad = respond("not json", &mut session, &ids, &config, &gate, &shutdown);
        let v = serde_json::from_str(&bad).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert!(v["error"].as_str().unwrap().contains("bad JSON"));

        let down = respond(
            r#"{"op":"shutdown"}"#,
            &mut session,
            &ids,
            &config,
            &gate,
            &shutdown,
        );
        let v = serde_json::from_str(&down).unwrap();
        assert_eq!(v["shutdown"].as_bool(), Some(true));
        assert!(shutdown.load(Ordering::Relaxed));
    }

    #[test]
    fn tenant_gate_blocks_at_cap_and_frees_on_drop() {
        let gate = TenantGate::new(1);
        let a = gate.admit("t");
        // A second tenant is unaffected by the first's slot.
        let other = gate.admit("u");
        drop(other);
        // The same tenant's next query blocks until the permit drops.
        let blocked = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _b = gate.admit("t");
                blocked.store(true, Ordering::Relaxed);
            });
            std::thread::sleep(Duration::from_millis(50));
            assert!(!blocked.load(Ordering::Relaxed), "cap was not enforced");
            drop(a);
        });
        assert!(blocked.load(Ordering::Relaxed));
    }
}
