//! Edit distance with Real Penalty (ERP).
//!
//! Chen & Ng's metric variant of the edit-distance family: gaps are
//! penalized by the distance to a fixed *gap point* `g` instead of a
//! constant, which restores the triangle inequality that EDR gives up.
//! Not in the paper's Table 1, but the standard sixth member of the
//! trajectory-measure zoo and a useful baseline next to DFD.

use fremo_trajectory::GroundDistance;

use crate::measure::SimilarityMeasure;

/// ERP distance between `a` and `b` with gap point `g`.
///
/// Conventions: both empty → `0`; one empty → the sum of the other's
/// distances to the gap point.
#[must_use]
pub fn erp<P: GroundDistance>(a: &[P], b: &[P], g: &P) -> f64 {
    let gap_cost = |s: &[P]| -> f64 { s.iter().map(|p| p.distance(g)).sum() };
    if a.is_empty() {
        return gap_cost(b);
    }
    if b.is_empty() {
        return gap_cost(a);
    }
    let m = b.len();
    // prev[j] = ERP(a[..i], b[..j]).
    let mut prev: Vec<f64> = std::iter::once(0.0)
        .chain(b.iter().scan(0.0, |acc, q| {
            *acc += q.distance(g);
            Some(*acc)
        }))
        .collect();
    let mut curr = vec![0.0_f64; m + 1];
    for p in a {
        curr[0] = prev[0] + p.distance(g);
        for (j, q) in b.iter().enumerate() {
            let match_cost = prev[j] + p.distance(q);
            let gap_a = prev[j + 1] + p.distance(g);
            let gap_b = curr[j] + q.distance(g);
            curr[j + 1] = match_cost.min(gap_a).min(gap_b);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// [`SimilarityMeasure`] wrapper for ERP with a fixed gap point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erp<P> {
    /// The gap point `g` (commonly the origin or the data centroid).
    pub gap: P,
}

impl<P> Erp<P> {
    /// Creates the measure with gap point `gap`.
    #[must_use]
    pub fn new(gap: P) -> Self {
        Erp { gap }
    }
}

impl<P: GroundDistance> SimilarityMeasure<P> for Erp<P> {
    fn distance(&self, a: &[P], b: &[P]) -> f64 {
        match (a.is_empty(), b.is_empty()) {
            (true, true) => 0.0,
            (true, false) | (false, true) => f64::INFINITY,
            _ => erp(a, b, &self.gap),
        }
    }

    fn name(&self) -> &'static str {
        "ERP"
    }

    fn robust_to_sampling_rate(&self) -> bool {
        false
    }

    fn supports_local_time_shifting(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_trajectory::EuclideanPoint;

    const G: EuclideanPoint = EuclideanPoint::new(0.0, 0.0);

    fn pts(coords: &[(f64, f64)]) -> Vec<EuclideanPoint> {
        coords
            .iter()
            .map(|&(x, y)| EuclideanPoint::new(x, y))
            .collect()
    }

    #[test]
    fn identical_is_zero() {
        let a = pts(&[(1.0, 1.0), (2.0, 2.0), (3.0, 1.0)]);
        assert_eq!(erp(&a, &a, &G), 0.0);
    }

    #[test]
    fn empty_costs_gap_distances() {
        let a = pts(&[(3.0, 4.0), (0.0, 5.0)]);
        assert_eq!(erp(&a, &[], &G), 10.0);
        assert_eq!(erp(&[], &a, &G), 10.0);
        assert_eq!(erp::<EuclideanPoint>(&[], &[], &G), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = pts(&[(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]);
        let b = pts(&[(0.5, 0.5), (2.5, 2.5)]);
        assert!((erp(&a, &b, &G) - erp(&b, &a, &G)).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality_unlike_edr() {
        // ERP is a metric; check the triangle inequality on a few triples.
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]);
        let c = pts(&[(5.0, 5.0)]);
        let ab = erp(&a, &b, &G);
        let bc = erp(&b, &c, &G);
        let ac = erp(&a, &c, &G);
        assert!(ac <= ab + bc + 1e-9);
        assert!(ab <= ac + bc + 1e-9);
    }

    #[test]
    fn gap_alignment_beats_bad_match() {
        // b has an outlier; skipping it via the gap is cheaper than
        // matching when the outlier is far from everything but close-ish
        // to g.
        let a = pts(&[(1.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(1.0, 0.0), (0.0, 0.1), (2.0, 0.0)]);
        let d = erp(&a, &b, &G);
        // Optimal: match 1st and 3rd, gap the outlier near g: cost ≈ 0.1.
        assert!(d < 0.2, "got {d}");
    }
}
