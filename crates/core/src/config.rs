//! Search configuration.

/// Which lower-bound families BTM/GTM may use.
///
/// The paper's Figure 15/16 experiments toggle the bound families to show
/// they complement each other; [`BoundSelection`] reproduces those toggles.
/// All-on relaxed bounds (the paper's final choice, Section 6.2.1) is the
/// default.
///
/// The struct is `#[non_exhaustive]`: construct it with one of the named
/// presets ([`BoundSelection::all_relaxed`] etc.) and adjust individual
/// families with the `with_*` setters, so future bound families can be
/// added without breaking callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct BoundSelection {
    /// `LB_cell` (Eq. 1): the start-cell ground distance.
    pub cell: bool,
    /// Start cross bounds `LB_cross^start` (Eq. 4) / `rLB_cross^start`
    /// (Eq. 12).
    pub cross: bool,
    /// Band bounds `LB_band^{row,col}` (Eq. 5–6) / relaxed (Eq. 14–15).
    pub band: bool,
    /// End-cell cross pruning inside a candidate subset (Eq. 9/13 and
    /// Algorithm 2 lines 12–13).
    pub end_cross: bool,
    /// Use the tight `O(n)`/`O(ξn)` bounds of Section 4.2 instead of the
    /// relaxed `O(1)` bounds of Section 4.3 (Figure 13/14's comparison).
    pub tight: bool,
}

impl BoundSelection {
    /// Every bound on, relaxed variants (the paper's recommended setting).
    #[must_use]
    pub const fn all_relaxed() -> Self {
        BoundSelection {
            cell: true,
            cross: true,
            band: true,
            end_cross: true,
            tight: false,
        }
    }

    /// Every bound on, tight variants (Figure 13/14's "Tight" line).
    #[must_use]
    pub const fn all_tight() -> Self {
        BoundSelection {
            cell: true,
            cross: true,
            band: true,
            end_cross: true,
            tight: true,
        }
    }

    /// Only `LB_cell` (Figure 16's weakest configuration).
    #[must_use]
    pub const fn cell_only() -> Self {
        BoundSelection {
            cell: true,
            cross: false,
            band: false,
            end_cross: false,
            tight: false,
        }
    }

    /// `LB_cell + rLB_cross` (Figure 16's middle configuration).
    #[must_use]
    pub const fn cell_cross() -> Self {
        BoundSelection {
            cell: true,
            cross: true,
            band: false,
            end_cross: false,
            tight: false,
        }
    }

    /// No bounds at all — degenerates BTM to BruteDP order (used by
    /// ablation benches).
    #[must_use]
    pub const fn none() -> Self {
        BoundSelection {
            cell: false,
            cross: false,
            band: false,
            end_cross: false,
            tight: false,
        }
    }

    /// Toggles the `LB_cell` family.
    #[must_use]
    pub const fn with_cell(mut self, on: bool) -> Self {
        self.cell = on;
        self
    }

    /// Toggles the start cross bounds.
    #[must_use]
    pub const fn with_cross(mut self, on: bool) -> Self {
        self.cross = on;
        self
    }

    /// Toggles the band bounds.
    #[must_use]
    pub const fn with_band(mut self, on: bool) -> Self {
        self.band = on;
        self
    }

    /// Toggles end-cell cross pruning inside expanded subsets.
    #[must_use]
    pub const fn with_end_cross(mut self, on: bool) -> Self {
        self.end_cross = on;
        self
    }

    /// Switches between the tight (Section 4.2) and relaxed (Section 4.3)
    /// bound variants.
    #[must_use]
    pub const fn with_tight(mut self, on: bool) -> Self {
        self.tight = on;
        self
    }
}

impl Default for BoundSelection {
    fn default() -> Self {
        BoundSelection::all_relaxed()
    }
}

/// The bound families, used for pruning attribution (Figure 15's breakdown
/// charts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundKind {
    /// Pruned by `LB_cell`.
    Cell,
    /// Pruned by a cross bound.
    Cross,
    /// Pruned by a band bound.
    Band,
    /// Pruned at the group level by a pattern bound (`GLB_cell`/cross/band).
    GroupPattern,
    /// Pruned at the group level by `GLB_DFD`.
    GroupDfd,
    /// Survived every bound; exact DFD computation was required.
    Exact,
}

/// Configuration of a motif search.
///
/// `#[non_exhaustive]`: construct via [`MotifConfig::new`] and customize
/// with the `with_*` setters so new knobs stay non-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct MotifConfig {
    /// Minimum motif length `ξ`: each motif half must satisfy
    /// `ie > i + ξ` (Problem 1). Must be at least 1.
    pub min_length: usize,
    /// Which lower bounds the bounding-based algorithms use.
    pub bounds: BoundSelection,
    /// Initial group size `τ` for GTM/GTM* (the paper's default is 32,
    /// Section 6.2.3). Rounded up to a power of two by GTM so halving
    /// reaches exactly 1.
    pub group_size: usize,
}

impl MotifConfig {
    /// Creates a configuration with minimum motif length `xi` and default
    /// bounds/grouping.
    ///
    /// # Panics
    ///
    /// Panics when `xi == 0` — Problem 1's constraint `i < ie` needs at
    /// least `ξ = 1`.
    #[must_use]
    pub fn new(xi: usize) -> Self {
        assert!(xi >= 1, "minimum motif length ξ must be at least 1");
        MotifConfig {
            min_length: xi,
            bounds: BoundSelection::default(),
            group_size: 32,
        }
    }

    /// Replaces the bound selection.
    #[must_use]
    pub const fn with_bounds(mut self, bounds: BoundSelection) -> Self {
        self.bounds = bounds;
        self
    }

    /// Replaces the initial group size `τ`.
    ///
    /// # Panics
    ///
    /// Panics when `tau == 0`.
    #[must_use]
    pub fn with_group_size(mut self, tau: usize) -> Self {
        assert!(tau >= 1, "group size τ must be at least 1");
        self.group_size = tau;
        self
    }

    /// Smallest single-trajectory length for which any valid candidate
    /// exists: `i < ie < j < je` with `ie ≥ i+ξ+1`, `je ≥ j+ξ+1` needs
    /// `n ≥ 2ξ + 4`.
    #[must_use]
    pub const fn min_trajectory_len(&self) -> usize {
        2 * self.min_length + 4
    }

    /// Smallest per-trajectory length for the two-trajectory variant:
    /// `ie ≥ i+ξ+1` needs `n ≥ ξ + 2`.
    #[must_use]
    pub const fn min_trajectory_len_between(&self) -> usize {
        self.min_length + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MotifConfig::new(100);
        assert_eq!(c.min_length, 100);
        assert_eq!(c.group_size, 32);
        assert!(c.bounds.cell && c.bounds.cross && c.bounds.band && c.bounds.end_cross);
        assert!(!c.bounds.tight);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_xi_rejected() {
        let _ = MotifConfig::new(0);
    }

    #[test]
    fn builders_compose() {
        let c = MotifConfig::new(10)
            .with_bounds(BoundSelection::cell_only())
            .with_group_size(8);
        assert!(c.bounds.cell && !c.bounds.cross);
        assert_eq!(c.group_size, 8);
    }

    #[test]
    fn minimum_lengths() {
        let c = MotifConfig::new(1);
        assert_eq!(c.min_trajectory_len(), 6); // i=0,ie=2,j=3,je=5
        assert_eq!(c.min_trajectory_len_between(), 3);
        let c = MotifConfig::new(100);
        assert_eq!(c.min_trajectory_len(), 204);
    }
}
