//! # fremo-similarity
//!
//! Trajectory similarity measures: the discrete Fréchet distance (DFD) the
//! paper is built on, plus every alternative its Related Work compares
//! against (Table 1): lock-step Euclidean distance (ED), Dynamic Time
//! Warping (DTW), Longest Common Subsequence (LCSS) and Edit Distance on
//! Real sequence (EDR), with Hausdorff as an extra classical baseline.
//!
//! | measure | non-uniform sampling | local time shifting | cost |
//! |---------|----------------------|---------------------|--------|
//! | ED      | ✗                    | ✗                   | `O(ℓ)` |
//! | DTW     | ✗                    | ✓                   | `O(ℓ²)`|
//! | LCSS    | ✗                    | ✓                   | `O(ℓ²)`|
//! | EDR     | ✗                    | ✓                   | `O(ℓ²)`|
//! | DFD     | ✓                    | ✓                   | `O(ℓ²)`|
//!
//! All measures are generic over the point type through
//! [`fremo_trajectory::GroundDistance`], so they work on geographic and
//! planar data alike.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dtw;
pub mod edr;
pub mod erp;
pub mod euclid;
pub mod frechet;
pub mod hausdorff;
pub mod lcss;
pub mod measure;

pub use dtw::{dtw, Dtw};
pub use edr::{edr, Edr};
pub use erp::{erp, Erp};
pub use euclid::{lockstep_euclidean, LockstepEuclidean};
pub use frechet::{dfd, dfd_decision, dfd_linear, dfd_with_coupling, DiscreteFrechet};
pub use hausdorff::{hausdorff, Hausdorff};
pub use lcss::{lcss_distance, lcss_length, Lcss};
pub use measure::SimilarityMeasure;
