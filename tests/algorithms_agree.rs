//! Cross-algorithm equivalence: all four algorithms are exact, so they must
//! return motifs with identical DFD on every workload, every parameter
//! setting, and both problem variants.

use fremo::prelude::*;
use fremo::trajectory::gen::Dataset;

fn algorithms() -> Vec<Box<dyn MotifDiscovery<GeoPoint>>> {
    vec![
        Box::new(BruteDp),
        Box::new(Btm),
        Box::new(Gtm),
        Box::new(GtmStar),
    ]
}

#[test]
fn within_all_datasets() {
    for dataset in Dataset::ALL {
        for seed in [1_u64, 2] {
            let t = dataset.generate(130, seed);
            let cfg = MotifConfig::new(8).with_group_size(8);
            let mut reference: Option<f64> = None;
            for alg in algorithms() {
                let m = alg.discover(&t, &cfg).expect("motif exists");
                assert!(
                    m.is_valid_within(t.len(), 8),
                    "{}: invalid motif {m}",
                    alg.name()
                );
                match reference {
                    None => reference = Some(m.distance),
                    Some(r) => assert!(
                        (m.distance - r).abs() < 1e-9,
                        "{dataset}/{}: {} vs {}",
                        alg.name(),
                        m.distance,
                        r
                    ),
                }
            }
        }
    }
}

#[test]
fn between_all_datasets() {
    for dataset in Dataset::ALL {
        let a = dataset.generate(110, 10);
        let b = dataset.generate(95, 20);
        let cfg = MotifConfig::new(7).with_group_size(8);
        let mut reference: Option<f64> = None;
        for alg in algorithms() {
            let m = alg.discover_between(&a, &b, &cfg).expect("motif exists");
            assert!(
                m.is_valid_between(a.len(), b.len(), 7),
                "{}: {m}",
                alg.name()
            );
            match reference {
                None => reference = Some(m.distance),
                Some(r) => assert!(
                    (m.distance - r).abs() < 1e-9,
                    "{dataset}/{}: {} vs {}",
                    alg.name(),
                    m.distance,
                    r
                ),
            }
        }
    }
}

#[test]
fn across_xi_values() {
    let t = Dataset::GeoLife.generate(140, 3);
    for xi in [1_usize, 2, 5, 10, 20, 40] {
        let cfg = MotifConfig::new(xi).with_group_size(8);
        let brute = BruteDp.discover(&t, &cfg);
        let gtm = Gtm.discover(&t, &cfg);
        match (brute, gtm) {
            (Some(b), Some(g)) => {
                assert!((b.distance - g.distance).abs() < 1e-9, "xi={xi}");
                // Larger ξ can only make the optimum worse (fewer pairs).
            }
            (None, None) => {} // too short for this ξ
            (b, g) => panic!("xi={xi}: disagreement on existence: {b:?} vs {g:?}"),
        }
    }
}

#[test]
fn optimum_is_monotone_in_xi() {
    // The candidate sets shrink as ξ grows, so the optimal DFD is
    // non-decreasing in ξ.
    let t = Dataset::Truck.generate(150, 9);
    let mut last = 0.0_f64;
    for xi in [1_usize, 3, 6, 12, 24] {
        let cfg = MotifConfig::new(xi);
        let m = Btm.discover(&t, &cfg).expect("motif");
        assert!(
            m.distance >= last - 1e-9,
            "optimum decreased from {last} to {} at xi={xi}",
            m.distance
        );
        last = m.distance;
    }
}

#[test]
fn boundary_lengths() {
    // Exactly at the minimum feasible n, exactly one candidate exists.
    let xi = 5;
    let n = 2 * xi + 4;
    let t = Dataset::Baboon.generate(n, 4);
    let cfg = MotifConfig::new(xi);
    for alg in algorithms() {
        let m = alg
            .discover(&t, &cfg)
            .expect("single candidate must be found");
        assert_eq!(m.first, (0, xi + 1), "{}", alg.name());
        assert_eq!(m.second, (xi + 2, 2 * xi + 3), "{}", alg.name());
    }
    // One point shorter: no candidate.
    let t = Dataset::Baboon.generate(n - 1, 4);
    for alg in algorithms() {
        assert!(alg.discover(&t, &cfg).is_none(), "{}", alg.name());
    }
}

#[test]
fn motif_distance_matches_standalone_dfd() {
    // The reported distance must equal the DFD of the reported pair.
    let t = Dataset::GeoLife.generate(120, 8);
    let cfg = MotifConfig::new(6);
    for alg in algorithms() {
        let m = alg.discover(&t, &cfg).expect("motif");
        let d = dfd(
            &t.points()[m.first.0..=m.first.1],
            &t.points()[m.second.0..=m.second.1],
        );
        assert!(
            (d - m.distance).abs() < 1e-9,
            "{}: {} vs {}",
            alg.name(),
            d,
            m.distance
        );
    }
}
