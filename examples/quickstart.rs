//! Quickstart: find the motif in a GPS trajectory.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use fremo::prelude::*;

fn main() {
    // A GeoLife-like pedestrian trajectory: 1,500 samples with non-uniform
    // sampling, GPS noise and repeated home–work trips.
    let trajectory = fremo::trajectory::gen::geolife_like(1500, 42);
    println!(
        "input: {} points, {:.1} km path length",
        trajectory.len(),
        trajectory.path_length() / 1000.0
    );

    // Find the most similar pair of non-overlapping subtrajectories of at
    // least ~50 samples each, using the paper's fastest exact algorithm.
    let config = MotifConfig::new(50);
    let (motif, stats) = Gtm.discover_with_stats(&trajectory, &config);
    let motif = motif.expect("trajectory long enough for ξ = 50");

    println!("motif:  {motif}");
    println!(
        "        first half  = S[{}..={}] ({} points)",
        motif.first.0,
        motif.first.1,
        motif.first_len()
    );
    println!(
        "        second half = S[{}..={}] ({} points)",
        motif.second.0,
        motif.second.1,
        motif.second_len()
    );
    println!("        DFD = {:.1} m", motif.distance);
    println!(
        "search: {:.3} s, {:.1}% of candidate pairs pruned without a DFD computation",
        stats.total_seconds,
        stats.pruned_fraction() * 100.0
    );

    // The halves are genuine subtrajectories — inspect them further:
    let first = trajectory.sub(motif.first.0, motif.first.1).unwrap();
    let second = trajectory.sub(motif.second.0, motif.second.1).unwrap();
    if let (Some(t1), Some(t2)) = (first.timestamps(), second.timestamps()) {
        println!(
            "        first half spans t = {:.0}..{:.0} s, second t = {:.0}..{:.0} s",
            t1[0],
            t1[t1.len() - 1],
            t2[0],
            t2[t2.len() - 1]
        );
    }
}
