//! Regenerates Figure 20 (response time vs xi).
use fremo_bench::experiments::{fig20_time_vs_xi, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = fig20_time_vs_xi::run(scale);
    print_all("Figure 20 (response time vs xi)", &tables);
}
